#include "catalog/function_registry.h"

#include <cmath>
#include <cstdint>

namespace starburst {

namespace {

Result<DataType> NumericPassThrough(const std::vector<DataType>& args) {
  for (const DataType& t : args) {
    if (!t.is_numeric() && t.id != TypeId::kNull) {
      return Status::TypeError("expected numeric argument, got " + t.ToString());
    }
  }
  for (const DataType& t : args) {
    if (t.id == TypeId::kDouble) return DataType::Double();
  }
  return DataType::Int();
}

// --- built-in aggregates -------------------------------------------------

class CountState : public AggregateState {
 public:
  Status Accumulate(const Value& v) override {
    if (!v.is_null()) ++count_;
    return Status::OK();
  }
  Result<Value> Finalize() override { return Value::Int(count_); }

 private:
  int64_t count_ = 0;
};

class SumState : public AggregateState {
 public:
  Status Accumulate(const Value& v) override {
    if (v.is_null()) return Status::OK();
    STARBURST_ASSIGN_OR_RETURN(double d, v.AsDouble());
    sum_ += d;
    if (v.type_id() == TypeId::kDouble) saw_double_ = true;
    saw_value_ = true;
    return Status::OK();
  }
  Result<Value> Finalize() override {
    if (!saw_value_) return Value::Null();
    if (saw_double_) return Value::Double(sum_);
    return Value::Int(static_cast<int64_t>(sum_));
  }

 private:
  double sum_ = 0;
  bool saw_double_ = false;
  bool saw_value_ = false;
};

class AvgState : public AggregateState {
 public:
  Status Accumulate(const Value& v) override {
    if (v.is_null()) return Status::OK();
    STARBURST_ASSIGN_OR_RETURN(double d, v.AsDouble());
    sum_ += d;
    ++count_;
    return Status::OK();
  }
  Result<Value> Finalize() override {
    if (count_ == 0) return Value::Null();
    return Value::Double(sum_ / static_cast<double>(count_));
  }

 private:
  double sum_ = 0;
  int64_t count_ = 0;
};

class MinMaxState : public AggregateState {
 public:
  explicit MinMaxState(bool want_min) : want_min_(want_min) {}
  Status Accumulate(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (best_.is_null()) {
      best_ = v;
      return Status::OK();
    }
    STARBURST_ASSIGN_OR_RETURN(int cmp, v.Compare(best_));
    if ((want_min_ && cmp < 0) || (!want_min_ && cmp > 0)) best_ = v;
    return Status::OK();
  }
  Result<Value> Finalize() override { return best_; }

 private:
  bool want_min_;
  Value best_;  // null until the first non-null input
};

// --- built-in set predicates ---------------------------------------------

/// ANY/SOME: true iff the element predicate held for at least one member.
class AnyState : public SetPredicateState {
 public:
  void Observe(bool match) override { hit_ = hit_ || match; }
  bool Decided() const override { return hit_; }
  bool Verdict() const override { return hit_; }

 private:
  bool hit_ = false;
};

/// ALL: true iff the element predicate held for every member (vacuously
/// true on the empty set, as in SQL).
class AllState : public SetPredicateState {
 public:
  void Observe(bool match) override { all_ = all_ && match; }
  bool Decided() const override { return !all_; }
  bool Verdict() const override { return all_; }

 private:
  bool all_ = true;
};

}  // namespace

FunctionRegistry::FunctionRegistry() { RegisterBuiltins(); }

Status FunctionRegistry::RegisterScalar(ScalarFunctionDef def) {
  std::string key = IdentUpper(def.name);
  if (!def.infer_type || !def.eval) {
    return Status::InvalidArgument("scalar function '" + key +
                                   "' must supply infer_type and eval");
  }
  if (!scalars_.emplace(key, std::move(def)).second) {
    return Status::AlreadyExists("scalar function '" + key + "' exists");
  }
  return Status::OK();
}

Status FunctionRegistry::RegisterAggregate(AggregateFunctionDef def) {
  std::string key = IdentUpper(def.name);
  if (!def.make_state) {
    return Status::InvalidArgument("aggregate '" + key + "' needs make_state");
  }
  if (!aggregates_.emplace(key, std::move(def)).second) {
    return Status::AlreadyExists("aggregate '" + key + "' exists");
  }
  return Status::OK();
}

Status FunctionRegistry::RegisterSetPredicate(SetPredicateFunctionDef def) {
  std::string key = IdentUpper(def.name);
  if (!def.make_state) {
    return Status::InvalidArgument("set predicate '" + key + "' needs make_state");
  }
  if (!set_predicates_.emplace(key, std::move(def)).second) {
    return Status::AlreadyExists("set predicate '" + key + "' exists");
  }
  return Status::OK();
}

Status FunctionRegistry::RegisterTableFunction(TableFunctionDef def) {
  std::string key = IdentUpper(def.name);
  if (!def.infer_schema || !def.eval) {
    return Status::InvalidArgument("table function '" + key +
                                   "' must supply infer_schema and eval");
  }
  if (!table_functions_.emplace(key, std::move(def)).second) {
    return Status::AlreadyExists("table function '" + key + "' exists");
  }
  return Status::OK();
}

const ScalarFunctionDef* FunctionRegistry::FindScalar(
    const std::string& name) const {
  auto it = scalars_.find(IdentUpper(name));
  return it == scalars_.end() ? nullptr : &it->second;
}

const AggregateFunctionDef* FunctionRegistry::FindAggregate(
    const std::string& name) const {
  auto it = aggregates_.find(IdentUpper(name));
  return it == aggregates_.end() ? nullptr : &it->second;
}

const SetPredicateFunctionDef* FunctionRegistry::FindSetPredicate(
    const std::string& name) const {
  auto it = set_predicates_.find(IdentUpper(name));
  return it == set_predicates_.end() ? nullptr : &it->second;
}

const TableFunctionDef* FunctionRegistry::FindTableFunction(
    const std::string& name) const {
  auto it = table_functions_.find(IdentUpper(name));
  return it == table_functions_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::ScalarNames() const {
  std::vector<std::string> names;
  for (const auto& [name, def] : scalars_) names.push_back(name);
  return names;
}

std::vector<std::string> FunctionRegistry::AggregateNames() const {
  std::vector<std::string> names;
  for (const auto& [name, def] : aggregates_) names.push_back(name);
  return names;
}

void FunctionRegistry::RegisterBuiltins() {
  // Scalars.
  (void)RegisterScalar(ScalarFunctionDef{
      "ABS", 1, NumericPassThrough,
      [](const std::vector<Value>& args) -> Result<Value> {
        const Value& v = args[0];
        if (v.is_null()) return Value::Null();
        if (v.type_id() == TypeId::kInt) {
          return Value::Int(v.int_value() < 0 ? -v.int_value() : v.int_value());
        }
        STARBURST_ASSIGN_OR_RETURN(double d, v.AsDouble());
        return Value::Double(std::fabs(d));
      }});
  (void)RegisterScalar(ScalarFunctionDef{
      "MOD", 2, [](const std::vector<DataType>& args) -> Result<DataType> {
        STARBURST_RETURN_IF_ERROR(NumericPassThrough(args).status());
        return DataType::Int();
      },
      [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].is_null() || args[1].is_null()) return Value::Null();
        STARBURST_ASSIGN_OR_RETURN(int64_t a, args[0].AsInt());
        STARBURST_ASSIGN_OR_RETURN(int64_t b, args[1].AsInt());
        if (b == 0) return Status::InvalidArgument("MOD by zero");
        return Value::Int(a % b);
      }});
  (void)RegisterScalar(ScalarFunctionDef{
      "LENGTH", 1,
      [](const std::vector<DataType>& args) -> Result<DataType> {
        if (args[0].id != TypeId::kString && args[0].id != TypeId::kNull) {
          return Status::TypeError("LENGTH expects STRING");
        }
        return DataType::Int();
      },
      [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].is_null()) return Value::Null();
        return Value::Int(static_cast<int64_t>(args[0].string_value().size()));
      }});
  (void)RegisterScalar(ScalarFunctionDef{
      "UPPER", 1,
      [](const std::vector<DataType>& args) -> Result<DataType> {
        if (args[0].id != TypeId::kString && args[0].id != TypeId::kNull) {
          return Status::TypeError("UPPER expects STRING");
        }
        return DataType::String();
      },
      [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].is_null()) return Value::Null();
        return Value::String(IdentUpper(args[0].string_value()));
      }});

  // Aggregates.
  (void)RegisterAggregate(AggregateFunctionDef{
      "COUNT", [](const DataType&) -> Result<DataType> { return DataType::Int(); },
      [] { return std::make_unique<CountState>(); }});
  (void)RegisterAggregate(AggregateFunctionDef{
      "SUM",
      [](const DataType& in) -> Result<DataType> {
        if (!in.is_numeric() && in.id != TypeId::kNull) {
          return Status::TypeError("SUM expects numeric input");
        }
        return in.id == TypeId::kDouble ? DataType::Double() : DataType::Int();
      },
      [] { return std::make_unique<SumState>(); }});
  (void)RegisterAggregate(AggregateFunctionDef{
      "AVG",
      [](const DataType& in) -> Result<DataType> {
        if (!in.is_numeric() && in.id != TypeId::kNull) {
          return Status::TypeError("AVG expects numeric input");
        }
        return DataType::Double();
      },
      [] { return std::make_unique<AvgState>(); }});
  (void)RegisterAggregate(AggregateFunctionDef{
      "MIN", [](const DataType& in) -> Result<DataType> { return in; },
      [] { return std::make_unique<MinMaxState>(/*want_min=*/true); }});
  (void)RegisterAggregate(AggregateFunctionDef{
      "MAX", [](const DataType& in) -> Result<DataType> { return in; },
      [] { return std::make_unique<MinMaxState>(/*want_min=*/false); }});

  // Set predicates (SQL built-ins; DBC additions like MAJORITY live in ext/).
  (void)RegisterSetPredicate(SetPredicateFunctionDef{
      "ANY", [] { return std::make_unique<AnyState>(); }});
  (void)RegisterSetPredicate(SetPredicateFunctionDef{
      "SOME", [] { return std::make_unique<AnyState>(); }});
  (void)RegisterSetPredicate(SetPredicateFunctionDef{
      "ALL", [] { return std::make_unique<AllState>(); }});
}

}  // namespace starburst
