// GOVERNANCE — cancellation tax: what do the cooperative cancel checks,
// the statement registry, and the admission ledger cost when nothing is
// ever killed, timed out, or queued?
//
// Cancellation is checked at batch boundaries only (one relaxed atomic
// load per check), registration is two short mutex sections per
// statement, and an admission grant is one ledger reservation — all
// per-statement or per-batch, never per-row. On the batch-throughput
// filter+project scan the governed configuration must therefore be
// noise. This bench times the same scan mix in two configurations and
// enforces the budget itself:
//
//   off  no deadline armed, admission disabled — the floor (the token
//        is still wired in; an unarmed Check() is the hot path)
//   on   STATEMENT_TIMEOUT_MS armed far in the future + ADMISSION_MEMORY
//        budget with a per-query reservation, so every statement arms a
//        deadline, reserves from the ledger, and releases it
//
// Exit status is the CI contract: nonzero when the governed path costs
// more than 2% over the better of two ungoverned runs, so the
// workflow's overhead-guard leg fails without parsing the table.

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

constexpr int kScanRows = 30000;
constexpr double kBudgetPct = 2.0;

double RunMix(Database* db, const std::vector<std::string>& queries,
              int reps) {
  return MedianUs(
      [&] {
        for (const std::string& sql : queries) {
          MustRows(db, sql);
        }
      },
      reps);
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("governance_overhead", argc, argv);

  Database db;
  // The batch-throughput bench's filter_project_scan table: k INT, v INT
  // with v uniform in [0, 1000).
  MustExec(&db, "CREATE TABLE t (k INT, v INT)");
  {
    std::mt19937 rng(11);
    for (int base = 0; base < kScanRows; base += 500) {
      std::string sql = "INSERT INTO t VALUES ";
      for (int i = base; i < base + 500; ++i) {
        if (i > base) sql += ", ";
        sql += "(" + std::to_string(i) + ", " +
               std::to_string(static_cast<int>(rng() % 1000)) + ")";
      }
      MustExec(&db, sql);
    }
  }
  MustExec(&db, "ANALYZE");
  MustExec(&db, "SET parallelism = 1");
  MustExec(&db, "SET BATCH_SIZE = 1024");
  // Keep the compile half out of the timed region so the scan dominates
  // and the overhead reads as a fraction of real execution.
  MustExec(&db, "SET PLAN_CACHE_SIZE = 64");

  std::vector<std::string> queries = {
      "SELECT k, v FROM t WHERE v < 500",
      "SELECT k, v FROM t WHERE v < 250",
      "SELECT k FROM t WHERE v < 100",
  };

  const int reps = 9;
  // Warm the buffer pool and plan cache before timing anything.
  RunMix(&db, queries, 1);

  double off_us = RunMix(&db, queries, reps);

  // Governed: every statement arms a deadline it never reaches and
  // round-trips a reservation through the admission ledger.
  MustExec(&db, "SET STATEMENT_TIMEOUT_MS = 600000");
  MustExec(&db, "SET ADMISSION_MEMORY = 1 GB");
  MustExec(&db, "SET QUERY_MEMORY = 64 MB");
  double on_us = RunMix(&db, queries, reps);

  MustExec(&db, "SET QUERY_MEMORY = DEFAULT");
  MustExec(&db, "SET ADMISSION_MEMORY = DEFAULT");
  MustExec(&db, "SET STATEMENT_TIMEOUT_MS = DEFAULT");
  double off2_us = RunMix(&db, queries, reps);

  // Baseline = the better of the two ungoverned runs, which absorbs
  // one-sided warmup drift.
  double base_us = std::min(off_us, off2_us);
  double overhead_pct = 100.0 * (on_us - base_us) / base_us;
  double mix_rows = 3.0 * kScanRows;  // rows scanned per mix pass

  std::printf("GOVERNANCE: cancel-check + admission overhead on the "
              "filter_project_scan mix (%d rows/table)\n", kScanRows);
  std::printf("%-12s %12s %10s\n", "config", "median(us)", "vs off");
  std::printf("%-12s %12.0f %9s\n", "off", base_us, "--");
  std::printf("%-12s %12.0f %+9.1f%%\n", "governed", on_us, overhead_pct);

  double rerun_drift = 100.0 * (off2_us - off_us) / off_us;
  std::printf("\n(ungoverned-path drift between first and last 'off' runs: "
              "%+.1f%% — the noise floor for the <%.0f%% target)\n",
              rerun_drift, kBudgetPct);

  json.Add("governance_off", {{"rows", mix_rows}}, base_us / 1e3,
           mix_rows / (base_us / 1e6));
  json.Add("governance_on", {{"rows", mix_rows}}, on_us / 1e3,
           mix_rows / (on_us / 1e6));

  if (overhead_pct > kBudgetPct) {
    std::fprintf(stderr,
                 "FAIL: governance costs %+.1f%% (> %.0f%% budget)\n",
                 overhead_pct, kBudgetPct);
    return 1;
  }
  std::printf("\nPASS: within the %.0f%% budget\n", kBudgetPct);
  return 0;
}
