file(REMOVE_RECURSE
  "CMakeFiles/starburst_exec.dir/exec/agg_ops.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/agg_ops.cc.o.d"
  "CMakeFiles/starburst_exec.dir/exec/executor.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/executor.cc.o.d"
  "CMakeFiles/starburst_exec.dir/exec/expr_eval.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/expr_eval.cc.o.d"
  "CMakeFiles/starburst_exec.dir/exec/filter_ops.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/filter_ops.cc.o.d"
  "CMakeFiles/starburst_exec.dir/exec/join_ops.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/join_ops.cc.o.d"
  "CMakeFiles/starburst_exec.dir/exec/plan_refiner.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/plan_refiner.cc.o.d"
  "CMakeFiles/starburst_exec.dir/exec/recursive_ops.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/recursive_ops.cc.o.d"
  "CMakeFiles/starburst_exec.dir/exec/scan_ops.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/scan_ops.cc.o.d"
  "CMakeFiles/starburst_exec.dir/exec/setop_ops.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/setop_ops.cc.o.d"
  "CMakeFiles/starburst_exec.dir/exec/sort_ops.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/sort_ops.cc.o.d"
  "CMakeFiles/starburst_exec.dir/exec/stream.cc.o"
  "CMakeFiles/starburst_exec.dir/exec/stream.cc.o.d"
  "libstarburst_exec.a"
  "libstarburst_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
