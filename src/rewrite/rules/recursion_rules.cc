#include <set>

#include "rewrite/rule_engine.h"

namespace starburst::rewrite {

using qgm::Box;
using qgm::BoxKind;
using qgm::Expr;
using qgm::ExprPtr;
using qgm::Quantifier;
using qgm::QuantifierType;

namespace {

/// §5: "With the introduction of recursion in DBMS queries,
/// transformations such as magic sets should be incorporated. ...
/// Recently we have been adding rewrite rules for recursive queries."
///
/// This rule is the sound special case of magic sets for *invariant*
/// columns: a consumer predicate over recursion-output columns that the
/// step copies unchanged from the iteration can be pushed into the
/// recursion's base. Every derived tuple's invariant columns equal its
/// base ancestor's, so seeding the fixpoint with only the qualifying base
/// tuples produces exactly the qualifying part of the closure — the
/// recursion explores a (often dramatically) smaller space.
struct RecursionPushdown {
  size_t predicate_index = 0;
  Quantifier* via = nullptr;  // F over the recursive union
  Box* recursion = nullptr;
  Box* base = nullptr;
};

/// Does the step re-emit column `c` verbatim from the iteration table?
bool StepCopiesColumn(const Box* step, const Box* recursion, size_t c) {
  if (step->kind != BoxKind::kSelect) return false;
  if (c >= step->head.size() || step->head[c].expr == nullptr) return false;
  const Expr& e = *step->head[c].expr;
  return e.kind == Expr::Kind::kColumnRef && e.column == c &&
         e.quantifier != nullptr && e.quantifier->input != nullptr &&
         e.quantifier->input->kind == BoxKind::kIterationRef &&
         e.quantifier->input->recursion == recursion;
}

bool FindRecursionPushdown(const RuleContext& ctx, RecursionPushdown* out) {
  Box* box = ctx.box;
  if (box->kind != BoxKind::kSelect) return false;
  for (size_t i = 0; i < box->predicates.size(); ++i) {
    const Expr& p = *box->predicates[i];
    if (p.kind == Expr::Kind::kExistsTest ||
        p.kind == Expr::Kind::kQuantCompare) {
      continue;
    }
    // Exactly one local quantifier, ranging over a recursive union.
    std::set<Quantifier*> used;
    p.CollectQuantifiers(&used);
    Quantifier* via = nullptr;
    bool ok = true;
    for (Quantifier* q : used) {
      if (q->owner != box) continue;
      if (via != nullptr && q != via) {
        ok = false;
        break;
      }
      via = q;
      if (q->type != QuantifierType::kForEach) ok = false;
    }
    if (!ok || via == nullptr) continue;
    Box* recursion = via->input;
    if (recursion == nullptr || recursion->kind != BoxKind::kRecursiveUnion) {
      continue;
    }
    // Exactly one *consumer* (the iteration back-reference doesn't count).
    int consumers = 0;
    for (const auto& b : ctx.graph->boxes()) {
      for (const auto& q : b->quantifiers) {
        if (q->input == recursion) ++consumers;
      }
    }
    if (consumers != 1) continue;
    if (recursion->quantifiers.size() != 2) continue;
    Box* base = recursion->quantifiers[0]->input;
    Box* step = recursion->quantifiers[1]->input;
    if (base == nullptr || base->kind != BoxKind::kSelect) continue;
    if (CountReferences(*ctx.graph, base) != 1) continue;
    // Every referenced column must be invariant through the step, and the
    // base head must be inlinable there.
    std::vector<std::pair<Quantifier*, size_t>> refs;
    p.CollectColumnRefs(&refs);
    bool invariant = true;
    for (const auto& [q, col] : refs) {
      if (q != via) continue;  // correlation params travel fine
      if (!StepCopiesColumn(step, recursion, col)) invariant = false;
      if (col >= base->head.size() || base->head[col].expr == nullptr) {
        invariant = false;
      }
    }
    if (!invariant) continue;
    out->predicate_index = i;
    out->via = via;
    out->recursion = recursion;
    out->base = base;
    return true;
  }
  return false;
}

Status RecursionPushdownAction(RuleContext& ctx) {
  RecursionPushdown c;
  if (!FindRecursionPushdown(ctx, &c)) {
    return Status::Internal("recursion pushdown: candidate vanished");
  }
  Box* box = ctx.box;
  ExprPtr p = std::move(box->predicates[c.predicate_index]);
  box->predicates.erase(box->predicates.begin() + c.predicate_index);

  // Rebind the consumer's recursion-output references onto the base box's
  // head expressions; the filtered base seeds the fixpoint.
  std::vector<const Expr*> replacements;
  for (const auto& h : c.base->head) replacements.push_back(h.expr.get());
  qgm::InlineIntoExpr(&p, c.via, replacements);
  // InlineIntoExpr rewires (via, col) -> base exprs, which reference the
  // base box's own quantifiers; consistency preserved.
  c.base->predicates.push_back(std::move(p));
  return Status::OK();
}

}  // namespace

void RegisterRecursionRules(RuleEngine* engine) {
  (void)engine->AddRule(RewriteRule{
      "recursion_selection_pushdown", "recursion", /*priority=*/7,
      /*weight=*/1.0,
      [](const RuleContext& ctx) {
        RecursionPushdown c;
        return FindRecursionPushdown(ctx, &c);
      },
      RecursionPushdownAction});
}

}  // namespace starburst::rewrite
