#ifndef STARBURST_PARSER_AST_H_
#define STARBURST_PARSER_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace starburst::ast {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Query;  // forward

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,
  kUnary,
  kFunctionCall,   // scalar or aggregate; resolved during binding
  kIsNull,
  kBetween,
  kInList,
  kInSubquery,
  kExists,
  kQuantifiedCmp,  // expr op ALL/ANY/SOME/<set predicate>(subquery)
  kScalarSubquery,
  kLike,
  kCase,
  kParam,          // ? positional parameter, numbered in parse order
};

enum class BinaryOp {
  kAnd, kOr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kConcat,
};

enum class UnaryOp { kNot, kNegate };

const char* BinaryOpName(BinaryOp op);

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  /// Roughly the Hydrogen spelling; for diagnostics and tests.
  virtual std::string ToString() const = 0;

  const ExprKind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  std::string ToString() const override { return value.ToString(); }
  Value value;
};

struct ParamExpr : Expr {
  explicit ParamExpr(size_t i) : Expr(ExprKind::kParam), index(i) {}
  std::string ToString() const override {
    return "?" + std::to_string(index + 1);
  }
  size_t index;  // zero-based position among the statement's ? markers
};

struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string q, std::string c)
      : Expr(ExprKind::kColumnRef), qualifier(std::move(q)), column(std::move(c)) {}
  std::string ToString() const override {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
  std::string qualifier;  // table/alias, may be empty
  std::string column;
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), left(std::move(l)), right(std::move(r)) {}
  std::string ToString() const override;
  BinaryOp op;
  ExprPtr left, right;
};

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  std::string ToString() const override;
  UnaryOp op;
  ExprPtr operand;
};

struct FunctionCallExpr : Expr {
  FunctionCallExpr(std::string n, std::vector<ExprPtr> a)
      : Expr(ExprKind::kFunctionCall), name(std::move(n)), args(std::move(a)) {}
  std::string ToString() const override;
  std::string name;
  std::vector<ExprPtr> args;
  bool star = false;     // COUNT(*)
  bool distinct = false; // COUNT(DISTINCT x)
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr e, bool neg)
      : Expr(ExprKind::kIsNull), operand(std::move(e)), negated(neg) {}
  std::string ToString() const override;
  ExprPtr operand;
  bool negated;
};

struct BetweenExpr : Expr {
  BetweenExpr(ExprPtr e, ExprPtr l, ExprPtr h, bool neg)
      : Expr(ExprKind::kBetween), operand(std::move(e)), low(std::move(l)),
        high(std::move(h)), negated(neg) {}
  std::string ToString() const override;
  ExprPtr operand, low, high;
  bool negated;
};

struct InListExpr : Expr {
  InListExpr(ExprPtr e, std::vector<ExprPtr> items_in, bool neg)
      : Expr(ExprKind::kInList), operand(std::move(e)), items(std::move(items_in)),
        negated(neg) {}
  std::string ToString() const override;
  ExprPtr operand;
  std::vector<ExprPtr> items;
  bool negated;
};

struct InSubqueryExpr : Expr {
  InSubqueryExpr(ExprPtr e, std::unique_ptr<Query> q, bool neg)
      : Expr(ExprKind::kInSubquery), operand(std::move(e)), query(std::move(q)),
        negated(neg) {}
  std::string ToString() const override;
  ExprPtr operand;
  std::unique_ptr<Query> query;
  bool negated;
};

struct ExistsExpr : Expr {
  ExistsExpr(std::unique_ptr<Query> q, bool neg)
      : Expr(ExprKind::kExists), query(std::move(q)), negated(neg) {}
  std::string ToString() const override;
  std::unique_ptr<Query> query;
  bool negated;
};

/// `expr op QUANT (subquery)` where QUANT is ALL/ANY/SOME or any registered
/// set-predicate function (the paper's MAJORITY example).
struct QuantifiedCmpExpr : Expr {
  QuantifiedCmpExpr(ExprPtr e, BinaryOp c, std::string quant,
                    std::unique_ptr<Query> q)
      : Expr(ExprKind::kQuantifiedCmp), operand(std::move(e)), cmp(c),
        quantifier(std::move(quant)), query(std::move(q)) {}
  std::string ToString() const override;
  ExprPtr operand;
  BinaryOp cmp;
  std::string quantifier;
  std::unique_ptr<Query> query;
};

struct ScalarSubqueryExpr : Expr {
  explicit ScalarSubqueryExpr(std::unique_ptr<Query> q)
      : Expr(ExprKind::kScalarSubquery), query(std::move(q)) {}
  std::string ToString() const override;
  std::unique_ptr<Query> query;
};

struct LikeExpr : Expr {
  LikeExpr(ExprPtr e, ExprPtr p, bool neg)
      : Expr(ExprKind::kLike), operand(std::move(e)), pattern(std::move(p)),
        negated(neg) {}
  std::string ToString() const override;
  ExprPtr operand, pattern;
  bool negated;
};

struct CaseExpr : Expr {
  struct WhenClause {
    ExprPtr condition;
    ExprPtr result;
  };
  CaseExpr() : Expr(ExprKind::kCase) {}
  std::string ToString() const override;
  std::vector<WhenClause> when_clauses;
  ExprPtr else_result;  // may be null (NULL)
};

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

enum class SetOpKind { kUnion, kIntersect, kExcept };
enum class JoinKind { kInner, kLeftOuter };

struct TableRef;

/// One item of a SELECT list.
struct SelectItem {
  ExprPtr expr;            // null when star
  std::string alias;
  bool star = false;
  std::string star_qualifier;  // "T.*"
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// SELECT core: SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...
struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::unique_ptr<TableRef>> from;
  ExprPtr where;                 // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                // may be null
};

/// A query body is a SELECT core or a set operation over two bodies.
struct QueryBody {
  enum class Kind { kSelect, kSetOp };
  explicit QueryBody(std::unique_ptr<SelectCore> s)
      : kind(Kind::kSelect), select(std::move(s)) {}
  QueryBody(SetOpKind o, bool all_in, std::unique_ptr<QueryBody> l,
            std::unique_ptr<QueryBody> r)
      : kind(Kind::kSetOp), op(o), all(all_in), left(std::move(l)),
        right(std::move(r)) {}

  Kind kind;
  // kSelect
  std::unique_ptr<SelectCore> select;
  // kSetOp
  SetOpKind op = SetOpKind::kUnion;
  bool all = false;
  std::unique_ptr<QueryBody> left, right;
};

/// A named table expression (§2): WITH [RECURSIVE] name [(cols)] AS (query).
struct CommonTableExpr {
  std::string name;
  std::vector<std::string> column_names;
  std::unique_ptr<Query> query;
};

/// A full query: table expressions, a body, and an optional ORDER BY/LIMIT.
struct Query {
  bool recursive = false;
  std::vector<CommonTableExpr> ctes;
  std::unique_ptr<QueryBody> body;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit
};

/// Argument to a table function: a table (query) or a scalar expression.
struct TableFuncArg {
  std::unique_ptr<Query> table;  // set for table args
  ExprPtr scalar;                // set for scalar args
};

/// A FROM-clause element.
struct TableRef {
  enum class Kind { kNamed, kSubquery, kJoin, kTableFunction };

  Kind kind = Kind::kNamed;
  std::string alias;

  // kNamed: a base table, view, or table-expression (CTE) reference.
  std::string name;

  // kSubquery: (query) AS alias
  std::unique_ptr<Query> subquery;

  // kJoin: left JOIN right ON condition
  JoinKind join_kind = JoinKind::kInner;
  std::unique_ptr<TableRef> left, right;
  ExprPtr on_condition;

  // kTableFunction: SAMPLE(table_arg, 10)
  std::string function_name;
  std::vector<TableFuncArg> func_args;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kCreateTable,
  kDropTable,
  kCreateIndex,
  kDropIndex,
  kCreateView,
  kDropView,
  kInsert,
  kUpdate,
  kDelete,
  kExplain,
  kAnalyze,
  kSet,
  kKill,
};

struct Statement {
  explicit Statement(StatementKind k) : kind(k) {}
  virtual ~Statement() = default;
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;

  const StatementKind kind;
};

using StatementPtr = std::unique_ptr<Statement>;

struct SelectStatement : Statement {
  explicit SelectStatement(std::unique_ptr<Query> q)
      : Statement(StatementKind::kSelect), query(std::move(q)) {}
  std::unique_ptr<Query> query;
};

struct ColumnSpec {
  std::string name;
  std::string type_name;  // resolved against built-ins then TypeRegistry
  bool not_null = false;
  bool primary_key = false;
  bool unique = false;
};

struct CreateTableStatement : Statement {
  CreateTableStatement() : Statement(StatementKind::kCreateTable) {}
  std::string name;
  std::vector<ColumnSpec> columns;
  std::vector<std::vector<std::string>> unique_constraints;  // incl. PK first
  std::string storage_manager;  // empty = default HEAP
};

struct DropTableStatement : Statement {
  DropTableStatement() : Statement(StatementKind::kDropTable) {}
  std::string name;
};

struct CreateIndexStatement : Statement {
  CreateIndexStatement() : Statement(StatementKind::kCreateIndex) {}
  std::string name;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
  std::string access_method;  // empty = BTREE
};

struct DropIndexStatement : Statement {
  DropIndexStatement() : Statement(StatementKind::kDropIndex) {}
  std::string name;
};

struct CreateViewStatement : Statement {
  CreateViewStatement() : Statement(StatementKind::kCreateView) {}
  std::string name;
  std::vector<std::string> column_names;
  std::unique_ptr<Query> query;
  std::string body_text;  // original SELECT text, stored in the catalog
};

struct DropViewStatement : Statement {
  DropViewStatement() : Statement(StatementKind::kDropView) {}
  std::string name;
};

struct InsertStatement : Statement {
  InsertStatement() : Statement(StatementKind::kInsert) {}
  std::string table;
  std::vector<std::string> columns;       // empty = all, in schema order
  std::vector<std::vector<ExprPtr>> rows; // VALUES rows (literal exprs)
  std::unique_ptr<Query> query;           // INSERT ... SELECT
};

struct UpdateStatement : Statement {
  UpdateStatement() : Statement(StatementKind::kUpdate) {}
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStatement : Statement {
  DeleteStatement() : Statement(StatementKind::kDelete) {}
  std::string table;
  ExprPtr where;  // may be null
};

/// ANALYZE [table]: recompute optimizer statistics (row counts, NDVs,
/// min/max) for one table or all of them.
struct AnalyzeStatement : Statement {
  AnalyzeStatement() : Statement(StatementKind::kAnalyze) {}
  std::string table;  // empty = all tables
};

/// SET <name> = <integer> | DEFAULT: session option assignment
/// (e.g. SET PARALLELISM = 4).
struct SetStatement : Statement {
  SetStatement() : Statement(StatementKind::kSet) {}
  std::string name;       // upper-cased option name
  int64_t value = 0;
  bool is_default = false;  // SET <name> = DEFAULT
};

/// KILL <statement_id>: trips the cancel token of a live statement (as
/// listed in sys.statements), making it unwind with a Cancelled status
/// at its next batch boundary.
struct KillStatement : Statement {
  KillStatement() : Statement(StatementKind::kKill) {}
  int64_t statement_id = 0;
};

/// EXPLAIN [QGM [BEFORE] | PLAN | [ANALYZE] [VERBOSE]] <select>:
/// dumps the rewritten QGM or the chosen plan instead of executing.
/// ANALYZE additionally executes the query and reports actual rows/time
/// per operator beside the estimates; VERBOSE adds the QGM and the
/// rewrite-rule firing log without executing (ANALYZE implies VERBOSE's
/// sections plus the actuals).
struct ExplainStatement : Statement {
  enum class What { kQgm, kPlan };
  ExplainStatement() : Statement(StatementKind::kExplain) {}
  What what = What::kPlan;
  /// When true, dump the QGM as produced by the binder, before rewrite.
  bool before_rewrite = false;
  bool analyze = false;
  bool verbose = false;
  std::unique_ptr<Query> query;
};

}  // namespace starburst::ast

#endif  // STARBURST_PARSER_AST_H_
