file(REMOVE_RECURSE
  "CMakeFiles/bench_star_coverage.dir/bench_star_coverage.cc.o"
  "CMakeFiles/bench_star_coverage.dir/bench_star_coverage.cc.o.d"
  "bench_star_coverage"
  "bench_star_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
