#include "storage/page.h"

#include <cassert>

namespace starburst {

FileId Pager::CreateFile() {
  files_.emplace_back();
  return static_cast<FileId>(files_.size() - 1);
}

PageNo Pager::AppendPage(FileId file) {
  assert(file < files_.size());
  files_[file].push_back(std::make_unique<Page>());
  return static_cast<PageNo>(files_[file].size() - 1);
}

size_t Pager::PageCount(FileId file) const {
  assert(file < files_.size());
  return files_[file].size();
}

Page* Pager::RawPage(FileId file, PageNo page) {
  assert(file < files_.size() && page < files_[file].size());
  return files_[file][page].get();
}

const Page* Pager::RawPage(FileId file, PageNo page) const {
  assert(file < files_.size() && page < files_[file].size());
  return files_[file][page].get();
}

}  // namespace starburst
