file(REMOVE_RECURSE
  "CMakeFiles/example_extensibility_tour.dir/extensibility_tour.cc.o"
  "CMakeFiles/example_extensibility_tour.dir/extensibility_tour.cc.o.d"
  "example_extensibility_tour"
  "example_extensibility_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_extensibility_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
