
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/rule_engine.cc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rule_engine.cc.o" "gcc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rule_engine.cc.o.d"
  "/root/repo/src/rewrite/rules/merge_rules.cc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rules/merge_rules.cc.o" "gcc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rules/merge_rules.cc.o.d"
  "/root/repo/src/rewrite/rules/misc_rules.cc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rules/misc_rules.cc.o" "gcc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rules/misc_rules.cc.o.d"
  "/root/repo/src/rewrite/rules/predicate_rules.cc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rules/predicate_rules.cc.o" "gcc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rules/predicate_rules.cc.o.d"
  "/root/repo/src/rewrite/rules/projection_rules.cc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rules/projection_rules.cc.o" "gcc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rules/projection_rules.cc.o.d"
  "/root/repo/src/rewrite/rules/recursion_rules.cc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rules/recursion_rules.cc.o" "gcc" "src/CMakeFiles/starburst_rewrite.dir/rewrite/rules/recursion_rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starburst_qgm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
