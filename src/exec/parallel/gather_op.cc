#include "exec/parallel/gather.h"

#include <utility>

namespace starburst::exec::parallel {

namespace {

/// Drains `op` (already open) batch-at-a-time, calling `sink(batch)` for
/// every non-empty batch, then closes it — whole batches move through the
/// exchange instead of single rows. The first error still closes the
/// operator so clones are quiesced. Clones share the coordinator's
/// ExecContext, so the per-batch cancel check here stops every worker
/// within one batch of a KILL or deadline.
template <typename BatchSink>
Status DrainBatchesInto(Operator* op, ExecContext* ctx, size_t batch_size,
                        BatchSink&& sink) {
  RowBatch batch(batch_size);
  Status status;
  while (true) {
    status = ctx->CheckCancel();
    if (!status.ok()) break;
    Result<bool> more = op->NextBatch(&batch);
    if (!more.ok()) {
      status = more.status();
      break;
    }
    if (!*more) break;
    status = sink(batch);
    if (!status.ok()) break;
  }
  op->Close();
  return status;
}

class GatherOp : public Operator {
 public:
  GatherOp(std::unique_ptr<ParallelPlanContext> pctx,
           std::vector<OperatorPtr> pipelines)
      : pctx_(std::move(pctx)), pipelines_(std::move(pipelines)) {}

  /// Agg mode.
  GatherOp(std::unique_ptr<ParallelPlanContext> pctx,
           std::vector<OperatorPtr> input_clones,
           std::vector<std::vector<CompiledExprPtr>> partition_keys,
           std::vector<OperatorPtr> agg_clones)
      : pctx_(std::move(pctx)), pipelines_(std::move(input_clones)),
        partition_keys_(std::move(partition_keys)),
        agg_clones_(std::move(agg_clones)) {}

  Status OpenImpl(ExecContext* ctx) override {
    buffers_.assign(std::max(pipelines_.size(), agg_clones_.size()), {});
    cursor_buffer_ = cursor_row_ = 0;
    STARBURST_RETURN_IF_ERROR(ResetMorsels(ctx));
    STARBURST_RETURN_IF_ERROR(RunBuilds(ctx));
    if (agg_clones_.empty()) {
      STARBURST_RETURN_IF_ERROR(RunOutputPhase(ctx));
    } else {
      STARBURST_RETURN_IF_ERROR(RunExchangePhase(ctx));
      STARBURST_RETURN_IF_ERROR(RunAggPhase(ctx));
    }
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    while (cursor_buffer_ < buffers_.size()) {
      std::vector<Row>& buf = buffers_[cursor_buffer_];
      if (cursor_row_ < buf.size()) {
        *row = std::move(buf[cursor_row_++]);
        return true;
      }
      ++cursor_buffer_;
      cursor_row_ = 0;
    }
    return false;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    while (!batch->full() && cursor_buffer_ < buffers_.size()) {
      std::vector<Row>& buf = buffers_[cursor_buffer_];
      if (cursor_row_ >= buf.size()) {
        ++cursor_buffer_;
        cursor_row_ = 0;
        continue;
      }
      batch->Append(std::move(buf[cursor_row_++]));
    }
    return !batch->empty();
  }

  void CloseImpl() override {
    buffers_.clear();
    for (auto& per_worker : pctx_->exchange.staged) {
      for (auto& partition : per_worker) partition.clear();
    }
  }

 private:
  Status ResetMorsels(ExecContext* ctx) {
    for (auto& [node, scan] : pctx_->scans) {
      STARBURST_ASSIGN_OR_RETURN(TableStorage * storage,
                                 ctx->storage()->GetTable(scan->table->name));
      scan->morsels.Reset(static_cast<PageNo>(storage->page_count()));
    }
    return Status::OK();
  }

  /// Shared hash-join builds, innermost first: each build drains its P
  /// morsel-driven inner clones into the staged table, then merges the
  /// partitions — both steps parallel, with a barrier between them.
  Status RunBuilds(ExecContext* ctx) {
    for (auto& build : pctx_->builds) {
      ParallelPlanContext::JoinBuild* jb = build.get();
      jb->table.Reset(jb->build_clones.size(), pctx_->parallelism);
      std::vector<std::function<Status()>> tasks;
      for (size_t w = 0; w < jb->build_clones.size(); ++w) {
        tasks.push_back([this, ctx, jb, w] {
          Operator* clone = jb->build_clones[w].get();
          STARBURST_RETURN_IF_ERROR(clone->Open(ctx));
          return DrainBatchesInto(
              clone, ctx, ctx->batch_size(), [jb, w](RowBatch& batch) {
                size_t n = batch.size();
                for (size_t i = 0; i < n; ++i) {
                  Row& row = batch.row(i);
                  std::vector<Value> key_values;
                  key_values.reserve(jb->key_slots.size());
                  bool has_null = false;
                  for (size_t slot : jb->key_slots) {
                    if (row[slot].is_null()) has_null = true;
                    key_values.push_back(row[slot]);
                  }
                  if (!has_null) {  // NULL keys never join
                    jb->table.Stage(w, Row(std::move(key_values)),
                                    std::move(row));
                  }
                }
                return Status::OK();
              });
        });
      }
      STARBURST_RETURN_IF_ERROR(
          pctx_->scheduler.RunParallel(std::move(tasks), ctx->cancel_token()));
      std::vector<std::function<Status()>> merges;
      for (size_t p = 0; p < jb->table.num_partitions(); ++p) {
        merges.push_back([jb, p] {
          jb->table.MergePartition(p);
          return Status::OK();
        });
      }
      STARBURST_RETURN_IF_ERROR(
          pctx_->scheduler.RunParallel(std::move(merges), ctx->cancel_token()));
    }
    return Status::OK();
  }

  Status RunOutputPhase(ExecContext* ctx) {
    std::vector<std::function<Status()>> tasks;
    for (size_t w = 0; w < pipelines_.size(); ++w) {
      tasks.push_back([this, ctx, w] {
        Operator* clone = pipelines_[w].get();
        STARBURST_RETURN_IF_ERROR(clone->Open(ctx));
        return DrainBatchesInto(
            clone, ctx, ctx->batch_size(), [this, w](RowBatch& batch) {
              batch.MoveRowsTo(&buffers_[w]);
              return Status::OK();
            });
      });
    }
    return pctx_->scheduler.RunParallel(std::move(tasks),
                                        ctx->cancel_token());
  }

  Status RunExchangePhase(ExecContext* ctx) {
    pctx_->exchange.Reset(pipelines_.size(), agg_clones_.size());
    std::vector<std::function<Status()>> tasks;
    for (size_t w = 0; w < pipelines_.size(); ++w) {
      tasks.push_back([this, ctx, w] {
        Operator* clone = pipelines_[w].get();
        STARBURST_RETURN_IF_ERROR(clone->Open(ctx));
        const size_t nparts = agg_clones_.size();
        auto& staged = pctx_->exchange.staged[w];
        const auto& keys = partition_keys_[w];
        return DrainBatchesInto(
            clone, ctx, ctx->batch_size(), [&, ctx](RowBatch& batch) -> Status {
              size_t n = batch.size();
              for (size_t i = 0; i < n; ++i) {
                Row& row = batch.row(i);
                size_t p = 0;
                if (nparts > 1) {
                  std::vector<Value> key_values;
                  key_values.reserve(keys.size());
                  for (const CompiledExprPtr& k : keys) {
                    STARBURST_ASSIGN_OR_RETURN(Value v, k->Eval(row, ctx));
                    key_values.push_back(std::move(v));
                  }
                  p = RowHash{}(Row(std::move(key_values))) % nparts;
                }
                staged[p].push_back(std::move(row));
              }
              return Status::OK();
            });
      });
    }
    return pctx_->scheduler.RunParallel(std::move(tasks),
                                        ctx->cancel_token());
  }

  Status RunAggPhase(ExecContext* ctx) {
    std::vector<std::function<Status()>> tasks;
    for (size_t p = 0; p < agg_clones_.size(); ++p) {
      tasks.push_back([this, ctx, p] {
        Operator* clone = agg_clones_[p].get();
        STARBURST_RETURN_IF_ERROR(clone->Open(ctx));
        return DrainBatchesInto(
            clone, ctx, ctx->batch_size(), [this, p](RowBatch& batch) {
              batch.MoveRowsTo(&buffers_[p]);
              return Status::OK();
            });
      });
    }
    return pctx_->scheduler.RunParallel(std::move(tasks),
                                        ctx->cancel_token());
  }

  std::unique_ptr<ParallelPlanContext> pctx_;
  std::vector<OperatorPtr> pipelines_;
  std::vector<std::vector<CompiledExprPtr>> partition_keys_;  // agg mode
  std::vector<OperatorPtr> agg_clones_;                       // agg mode
  std::vector<std::vector<Row>> buffers_;
  size_t cursor_buffer_ = 0;
  size_t cursor_row_ = 0;
};

class ExchangeSourceOp : public Operator {
 public:
  ExchangeSourceOp(const AggExchange* exchange, size_t partition)
      : exchange_(exchange), partition_(partition) {}

  Status OpenImpl(ExecContext*) override {
    worker_ = 0;
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    while (worker_ < exchange_->staged.size()) {
      const std::vector<Row>& rows = exchange_->staged[worker_][partition_];
      if (pos_ < rows.size()) {
        *row = rows[pos_++];
        return true;
      }
      ++worker_;
      pos_ = 0;
    }
    return false;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    while (!batch->full() && worker_ < exchange_->staged.size()) {
      const std::vector<Row>& rows = exchange_->staged[worker_][partition_];
      if (pos_ >= rows.size()) {
        ++worker_;
        pos_ = 0;
        continue;
      }
      batch->Append(rows[pos_++]);
    }
    return !batch->empty();
  }

  void CloseImpl() override {}

 private:
  const AggExchange* exchange_;
  size_t partition_;
  size_t worker_ = 0;
  size_t pos_ = 0;
};

}  // namespace

OperatorPtr MakeGatherOp(std::unique_ptr<ParallelPlanContext> pctx,
                         std::vector<OperatorPtr> pipelines) {
  return std::make_unique<GatherOp>(std::move(pctx), std::move(pipelines));
}

OperatorPtr MakeGatherAggOp(
    std::unique_ptr<ParallelPlanContext> pctx,
    std::vector<OperatorPtr> input_clones,
    std::vector<std::vector<CompiledExprPtr>> partition_keys,
    std::vector<OperatorPtr> agg_clones) {
  return std::make_unique<GatherOp>(std::move(pctx), std::move(input_clones),
                                    std::move(partition_keys),
                                    std::move(agg_clones));
}

OperatorPtr MakeExchangeSourceOp(const AggExchange* exchange,
                                 size_t partition) {
  return std::make_unique<ExchangeSourceOp>(exchange, partition);
}

}  // namespace starburst::exec::parallel
