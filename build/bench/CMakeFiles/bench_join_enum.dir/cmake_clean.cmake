file(REMOVE_RECURSE
  "CMakeFiles/bench_join_enum.dir/bench_join_enum.cc.o"
  "CMakeFiles/bench_join_enum.dir/bench_join_enum.cc.o.d"
  "bench_join_enum"
  "bench_join_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
