file(REMOVE_RECURSE
  "CMakeFiles/starburst_common.dir/common/datatype.cc.o"
  "CMakeFiles/starburst_common.dir/common/datatype.cc.o.d"
  "CMakeFiles/starburst_common.dir/common/row.cc.o"
  "CMakeFiles/starburst_common.dir/common/row.cc.o.d"
  "CMakeFiles/starburst_common.dir/common/status.cc.o"
  "CMakeFiles/starburst_common.dir/common/status.cc.o.d"
  "CMakeFiles/starburst_common.dir/common/value.cc.o"
  "CMakeFiles/starburst_common.dir/common/value.cc.o.d"
  "libstarburst_common.a"
  "libstarburst_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
