# Empty compiler generated dependencies file for bench_star_coverage.
# This may be replaced when dependencies are built.
