#ifndef STARBURST_OBS_OP_STATS_H_
#define STARBURST_OBS_OP_STATS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace starburst::obs {

/// Runtime counters one QES operator accumulates across its lifetime:
/// (re-)opens, Next invocations, rows produced, and inclusive wall time
/// spent inside Open/Next/Close (children included — subtract child time
/// for self time).
///
/// Counters are atomic because parallel pipeline clones share one stats
/// node per plan node, so EXPLAIN ANALYZE aggregates across workers
/// (opens then counts clone opens — the "loops" column).
struct OperatorStats {
  std::atomic<uint64_t> opens{0};
  std::atomic<uint64_t> next_calls{0};
  std::atomic<uint64_t> rows_out{0};
  std::atomic<double> wall_us{0};
  /// Memory-governed blocking operators (sort, aggregation, distinct)
  /// additionally report their spill activity and high-water memory mark:
  /// runs/partitions written to temp storage, bytes written, and the peak
  /// tracked reservation. Zero spill_runs with nonzero peak_memory_bytes
  /// means the operator stayed within budget.
  std::atomic<uint64_t> spill_runs{0};
  std::atomic<uint64_t> spill_bytes{0};
  std::atomic<uint64_t> peak_memory_bytes{0};
};

/// The refined plan tree annotated with estimates (from the optimizer's
/// PlanProps) and actuals (filled in during execution through the
/// OperatorStats each operator writes into). Nodes have stable addresses
/// for the lifetime of the tree, so operators can hold raw pointers.
class PlanStatsTree {
 public:
  struct Node {
    std::string name;        // the plan node's EXPLAIN head line
    double est_rows = 0;
    double est_cost = 0;
    /// Grouping-only node (e.g. a subquery-runtime wrapper): no operator
    /// writes into `actual`, so rendering skips the actual column.
    bool synthetic = false;
    OperatorStats actual;
    Node* parent = nullptr;
    std::vector<Node*> children;
  };

  PlanStatsTree() = default;
  PlanStatsTree(const PlanStatsTree&) = delete;
  PlanStatsTree& operator=(const PlanStatsTree&) = delete;

  /// Appends a child under `parent` (null = a root). The returned pointer
  /// stays valid for the tree's lifetime.
  Node* AddNode(Node* parent, std::string name, double est_rows,
                double est_cost);

  /// Makes every current root a child of a fresh node (the query-level
  /// LIMIT wrapper), which becomes the sole root.
  Node* WrapRoot(std::string name, double est_rows, double est_cost);

  const std::vector<Node*>& roots() const { return roots_; }
  bool empty() const { return nodes_.empty(); }

  /// Wall time spent in the node itself, excluding its children.
  static double SelfUs(const Node& node);

  /// Annotated tree rendering; with_actuals adds rows/time/loops beside
  /// the estimates ("-" for operators that never opened).
  std::string Render(bool with_actuals) const;

  /// Zeroes every node's actual counters. A cached plan keeps its stats
  /// tree across executions; without a reset, actuals would accumulate
  /// and EXPLAIN-style output would mix runs.
  void ResetActuals();

  /// The k nodes with the largest self time, descending (opened ones only).
  std::vector<const Node*> TopBySelfTime(size_t k) const;

 private:
  std::deque<Node> nodes_;  // deque: stable addresses under growth
  std::vector<Node*> roots_;
};

}  // namespace starburst::obs

#endif  // STARBURST_OBS_OP_STATS_H_
