#ifndef STARBURST_STORAGE_PAGE_H_
#define STARBURST_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/result.h"

namespace starburst {

inline constexpr size_t kPageSize = 4096;

/// A fixed-size database page. Storage managers impose their own layout.
struct Page {
  std::array<uint8_t, kPageSize> data{};

  uint16_t ReadU16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, data.data() + off, sizeof(v));
    return v;
  }
  void WriteU16(size_t off, uint16_t v) {
    std::memcpy(data.data() + off, &v, sizeof(v));
  }
  uint32_t ReadU32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, data.data() + off, sizeof(v));
    return v;
  }
  void WriteU32(size_t off, uint32_t v) {
    std::memcpy(data.data() + off, &v, sizeof(v));
  }
};

using FileId = uint32_t;
using PageNo = uint32_t;

/// Record identifier: which page of the table's file, which slot.
struct Rid {
  PageNo page = 0;
  uint16_t slot = 0;

  bool operator==(const Rid& o) const { return page == o.page && slot == o.slot; }
  bool operator<(const Rid& o) const {
    return page != o.page ? page < o.page : slot < o.slot;
  }
};

/// The simulated disk: a set of page files. All pages live in memory; the
/// BufferPool in front of the Pager decides what counts as a (simulated)
/// disk read or write, which is what the cost model and benches observe.
class Pager {
 public:
  FileId CreateFile();
  /// Appends a zeroed page; returns its number.
  PageNo AppendPage(FileId file);
  size_t PageCount(FileId file) const;
  /// Direct access, no I/O accounting (BufferPool uses this internally).
  Page* RawPage(FileId file, PageNo page);
  const Page* RawPage(FileId file, PageNo page) const;

 private:
  std::vector<std::vector<std::unique_ptr<Page>>> files_;
};

}  // namespace starburst

#endif  // STARBURST_STORAGE_PAGE_H_
