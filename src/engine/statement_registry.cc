#include "engine/statement_registry.h"

#include <utility>

namespace starburst {

void StatementRegistry::Register(int64_t id, std::string sql,
                                 int64_t start_ts_us, CancelToken* token) {
  if (sql.size() > kMaxSqlLength) {
    sql.resize(kMaxSqlLength - 3);
    sql += "...";
  }
  std::lock_guard<std::mutex> lock(mu_);
  Live& live = live_[id];
  live.sql = std::move(sql);
  live.start_ts_us = start_ts_us;
  live.phase = "parse";
  live.token = token;
  live.memory = nullptr;
}

void StatementRegistry::SetPhase(int64_t id, const char* phase) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  if (it != live_.end()) it->second.phase = phase;
}

void StatementRegistry::SetMemoryTracker(int64_t id,
                                         const MemoryTracker* tracker) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  if (it != live_.end()) it->second.memory = tracker;
}

void StatementRegistry::Finish(int64_t id, const std::string& status,
                               uint64_t peak_memory_bytes, int64_t total_us) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return;
  StatementSnapshot snap;
  snap.id = id;
  snap.sql = std::move(it->second.sql);
  snap.status = status;
  snap.phase = it->second.phase;
  snap.start_ts_us = it->second.start_ts_us;
  snap.total_us = total_us;
  snap.peak_memory_bytes = peak_memory_bytes;
  live_.erase(it);
  history_.push_back(std::move(snap));
  while (history_.size() > history_capacity_) history_.pop_front();
}

Status StatementRegistry::Kill(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) {
    return Status::NotFound("no running statement with id " +
                            std::to_string(id));
  }
  it->second.token->Kill();
  return Status::OK();
}

std::vector<StatementSnapshot> StatementRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StatementSnapshot> out;
  out.reserve(live_.size() + history_.size());
  for (const auto& [id, live] : live_) {
    StatementSnapshot snap;
    snap.id = id;
    snap.sql = live.sql;
    snap.status = "running";
    snap.phase = live.phase;
    snap.start_ts_us = live.start_ts_us;
    snap.total_us = 0;
    snap.peak_memory_bytes = live.memory != nullptr ? live.memory->peak() : 0;
    out.push_back(std::move(snap));
  }
  for (const StatementSnapshot& snap : history_) out.push_back(snap);
  return out;
}

size_t StatementRegistry::live_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

void StatementRegistry::set_history_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  history_capacity_ = n;
  while (history_.size() > history_capacity_) history_.pop_front();
}

}  // namespace starburst
