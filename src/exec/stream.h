#ifndef STARBURST_EXEC_STREAM_H_
#define STARBURST_EXEC_STREAM_H_

#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "qgm/box.h"
#include "storage/storage_engine.h"

namespace starburst::exec {

/// Runtime statistics the QES collects while interpreting a QEP.
struct ExecStats {
  uint64_t rows_emitted = 0;
  uint64_t subquery_evaluations = 0;   // inner plan (re-)executions
  uint64_t subquery_cache_hits = 0;    // correlation values unchanged
  uint64_t shipped_rows = 0;           // through SHIP operators
  uint64_t recursion_iterations = 0;
  uint64_t shared_materializations = 0;  // shared TEMPs actually built
};

/// Shared evaluation context for one query execution: Core access,
/// correlation parameter frames (evaluate-on-demand subqueries, dependent
/// joins), and the recursion working tables.
class ExecContext {
 public:
  ExecContext(StorageEngine* storage, const Catalog* catalog)
      : storage_(storage), catalog_(catalog) {}

  StorageEngine* storage() { return storage_; }
  const Catalog* catalog() const { return catalog_; }
  ExecStats& stats() { return stats_; }

  /// Correlation frames. A dependent join or subquery invocation pushes a
  /// frame of (quantifier, column) -> value before (re)opening the inner
  /// stream; frames nest for multi-level correlation.
  using ParamKey = std::pair<const qgm::Quantifier*, size_t>;
  struct ParamFrame {
    std::map<ParamKey, Value> values;
  };
  void PushParams(const ParamFrame* frame) { param_stack_.push_back(frame); }
  void PopParams() { param_stack_.pop_back(); }
  /// Innermost binding wins.
  Result<Value> LookupParam(const qgm::Quantifier* q, size_t column) const;

  /// Recursion: the RECURSE operator publishes the table ITERREF reads,
  /// keyed by the recursive-union box.
  void SetIterationTable(const qgm::Box* recursion,
                         const std::vector<Row>* rows) {
    iteration_tables_[recursion] = rows;
  }
  const std::vector<Row>* IterationTable(const qgm::Box* recursion) const {
    auto it = iteration_tables_.find(recursion);
    return it == iteration_tables_.end() ? nullptr : it->second;
  }

  /// Shared table-expression materializations ("materialized once and
  /// used several times", §5), keyed by the optimizer's shared-TEMP plan
  /// node. All consumer operators read the same copy.
  const std::vector<Row>* SharedTable(const void* key) const {
    auto it = shared_tables_.find(key);
    return it == shared_tables_.end() ? nullptr : &it->second;
  }
  const std::vector<Row>* StoreSharedTable(const void* key,
                                           std::vector<Row> rows) {
    ++stats_.shared_materializations;
    return &(shared_tables_[key] = std::move(rows));
  }

 private:
  StorageEngine* storage_;
  const Catalog* catalog_;
  std::vector<const ParamFrame*> param_stack_;
  std::map<const qgm::Box*, const std::vector<Row>*> iteration_tables_;
  std::map<const void*, std::vector<Row>> shared_tables_;
  ExecStats stats_;
};

/// A QES operator (§7): "Each operator takes one or more streams of tuples
/// as input and produces one or more streams of tuples (usually one) as
/// output. We implement the concept of streams by lazy evaluation" — the
/// classic open/next/close protocol. Operators are re-openable: a dependent
/// join re-Opens its inner stream per outer row under fresh parameters.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(ExecContext* ctx) = 0;
  /// Produces the next tuple; false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
  virtual void Close() = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains an operator into a vector (operator must be Open).
Result<std::vector<Row>> DrainOperator(Operator* op);

}  // namespace starburst::exec

#endif  // STARBURST_EXEC_STREAM_H_
