#ifndef STARBURST_COMMON_DATATYPE_H_
#define STARBURST_COMMON_DATATYPE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace starburst {

/// Built-in column type tags. `kExtension` covers every externally-defined
/// (DBC) type; the concrete extension type is named by DataType::type_name.
enum class TypeId : uint8_t {
  kNull = 0,
  kBool,
  kInt,      // 64-bit signed
  kDouble,   // IEEE double
  kString,   // variable-length UTF-8
  kExtension,
};

const char* TypeIdName(TypeId id);

/// A column datatype: a built-in tag, or an extension tag plus the name the
/// DBC registered the type under ("POINT", ...).
struct DataType {
  TypeId id = TypeId::kNull;
  std::string type_name;  // only for kExtension

  DataType() = default;
  explicit DataType(TypeId tid) : id(tid) {}

  static DataType Null() { return DataType(TypeId::kNull); }
  static DataType Bool() { return DataType(TypeId::kBool); }
  static DataType Int() { return DataType(TypeId::kInt); }
  static DataType Double() { return DataType(TypeId::kDouble); }
  static DataType String() { return DataType(TypeId::kString); }
  static DataType Extension(std::string name) {
    DataType t(TypeId::kExtension);
    t.type_name = std::move(name);
    return t;
  }

  bool is_numeric() const { return id == TypeId::kInt || id == TypeId::kDouble; }
  bool is_extension() const { return id == TypeId::kExtension; }

  /// "INT", "STRING", or the extension name.
  std::string ToString() const;

  bool operator==(const DataType& other) const {
    return id == other.id && type_name == other.type_name;
  }
  bool operator!=(const DataType& other) const { return !(*this == other); }
};

class Value;  // defined in common/value.h

/// Behaviour a DBC supplies when registering an externally-defined type
/// (§2 of the paper: "Starburst will allow the definition of almost any
/// type"). Extension values are carried as opaque byte payloads; these
/// callbacks give them semantics.
struct ExtensionTypeDef {
  std::string name;
  /// Three-way comparison of two payloads: <0, 0, >0.
  std::function<int(const std::string&, const std::string&)> compare;
  /// Rendering for result sets / EXPLAIN.
  std::function<std::string(const std::string&)> to_string;
  /// Parse from a literal's text (e.g. "POINT(1.5, 2)"); empty = unsupported.
  std::function<Result<std::string>(const std::string&)> from_literal;
};

/// Registry of externally-defined column types. One global instance lives
/// for the process (`TypeRegistry::Global()`); tests may build their own.
class TypeRegistry {
 public:
  static TypeRegistry& Global();

  Status Register(ExtensionTypeDef def);
  bool Contains(const std::string& name) const;
  Result<const ExtensionTypeDef*> Lookup(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, ExtensionTypeDef> types_;
};

}  // namespace starburst

#endif  // STARBURST_COMMON_DATATYPE_H_
