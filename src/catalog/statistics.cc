#include "catalog/statistics.h"

#include "catalog/schema.h"

namespace starburst {

const ColumnStats* TableStats::FindColumn(const std::string& name) const {
  auto it = columns.find(IdentUpper(name));
  if (it == columns.end()) return nullptr;
  return &it->second;
}

}  // namespace starburst
