file(REMOVE_RECURSE
  "libstarburst_storage.a"
)
