// E1 — §5's claim: "By merging the operations, there is greater scope for
// optimization, which may result in an improved execution plan."
//
// The paper's query runs at growing scale with the rewrite phase enabled
// and bypassed. Without rewrite the E quantifier stays a correlated
// membership test evaluated per outer row; with Rule 1 + Rule 2 it
// becomes an ordinary join the optimizer can hash. The shape to confirm:
// rewrite-on wins, and the gap widens with scale (O(n) vs ~O(n^2)).

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

int main() {
  const char* sql =
      "SELECT partno, price, order_qty FROM quotations Q1 "
      "WHERE Q1.partno IN (SELECT partno FROM inventory Q3 "
      "WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')";

  std::printf("E1: paper query, rewrite bypassed vs. enabled\n");
  std::printf("%7s %7s | %12s %12s | %12s %12s | %8s\n", "scale", "rows",
              "off: exec us", "plan cost", "on: exec us", "plan cost",
              "speedup");
  for (int scale : {2, 5, 10, 20, 50}) {
    auto db = MakePartsDb(scale);
    // Bypassed: correlated evaluate-on-demand subquery per outer row.
    db->options().rewrite_enabled = false;
    size_t rows_off = 0;
    double exec_off = MedianUs([&] { rows_off = MustRows(db.get(), sql); });
    double cost_off = db->last_metrics().plan_cost;

    db->options().rewrite_enabled = true;
    size_t rows_on = 0;
    double exec_on = MedianUs([&] { rows_on = MustRows(db.get(), sql); });
    double cost_on = db->last_metrics().plan_cost;

    if (rows_on != rows_off) {
      std::fprintf(stderr, "ANSWER MISMATCH at scale %d: %zu vs %zu\n", scale,
                   rows_off, rows_on);
      return 1;
    }
    std::printf("%7d %7zu | %12.0f %12.1f | %12.0f %12.1f | %7.1fx\n", scale,
                rows_on, exec_off, cost_off, exec_on, cost_on,
                exec_off / std::max(exec_on, 1.0));
  }
  std::printf("\nShape check: identical answers; rewrite-on faster, gap "
              "grows with scale.\n");
  return 0;
}
