file(REMOVE_RECURSE
  "libstarburst_exec.a"
)
