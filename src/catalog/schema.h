#ifndef STARBURST_CATALOG_SCHEMA_H_
#define STARBURST_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/datatype.h"

namespace starburst {

/// One column of a stored or derived table.
struct ColumnDef {
  std::string name;
  DataType type;
  bool nullable = true;
};

/// An ordered list of columns; the shape of every table, view, and
/// operator output in the system.
class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(ColumnDef col) { columns_.push_back(std::move(col)); }

  /// Case-insensitive column lookup; nullopt if absent.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// "(partno INT, price DOUBLE)"
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

/// Case-insensitive identifier comparison used throughout the catalog and
/// name resolution (Hydrogen identifiers are case-insensitive, as in SQL).
bool IdentEquals(const std::string& a, const std::string& b);
/// Canonical (upper-case) form of an identifier.
std::string IdentUpper(const std::string& s);

}  // namespace starburst

#endif  // STARBURST_CATALOG_SCHEMA_H_
