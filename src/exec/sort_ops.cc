#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "exec/operators.h"

namespace starburst::exec {

namespace {

class SortOp : public Operator {
 public:
  SortOp(OperatorPtr input, std::vector<std::pair<size_t, bool>> keys)
      : input_(std::move(input)), keys_(std::move(keys)) {}

  Status OpenImpl(ExecContext* ctx) override {
    STARBURST_RETURN_IF_ERROR(input_->Open(ctx));
    Result<std::vector<Row>> rows =
        DrainOperator(input_.get(), ctx->batch_size());
    input_->Close();
    if (!rows.ok()) return rows.status();
    rows_ = rows.TakeValue();
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       for (const auto& [slot, asc] : keys_) {
                         int c = a[slot].CompareTotal(b[slot]);
                         if (c != 0) return asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_++];
    return true;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    return FillBatchFromRows(rows_, &pos_, batch);
  }

  void CloseImpl() override { rows_.clear(); }

 private:
  OperatorPtr input_;
  std::vector<std::pair<size_t, bool>> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr input) : input_(std::move(input)) {}

  Status OpenImpl(ExecContext* ctx) override {
    seen_.clear();
    return input_->Open(ctx);
  }

  Result<bool> NextImpl(Row* row) override {
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, input_->Next(row));
      if (!more) return false;
      if (seen_.insert(*row).second) return true;
    }
  }

  /// Batched DISTINCT: first-seen rows are marked in the selection vector.
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, input_->NextBatch(batch));
      if (!more) return false;
      std::vector<uint32_t> keep;
      size_t n = batch->size();
      keep.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (seen_.insert(batch->row(i)).second) {
          keep.push_back(static_cast<uint32_t>(batch->physical_index(i)));
        }
      }
      batch->SetSelection(std::move(keep));
      if (!batch->empty()) return true;
    }
  }

  void CloseImpl() override {
    input_->Close();
    seen_.clear();
  }

 private:
  OperatorPtr input_;
  std::unordered_set<Row, RowHash> seen_;
};

}  // namespace

OperatorPtr MakeSortOp(OperatorPtr input,
                       std::vector<std::pair<size_t, bool>> keys) {
  return std::make_unique<SortOp>(std::move(input), std::move(keys));
}

OperatorPtr MakeDistinctOp(OperatorPtr input) {
  return std::make_unique<DistinctOp>(std::move(input));
}

}  // namespace starburst::exec
