#include <cmath>

#include "ext/extensions.h"

namespace starburst::ext {

namespace {

/// Welford's online variance — numerically stable streaming state.
class VarianceState : public AggregateState {
 public:
  explicit VarianceState(bool stddev) : stddev_(stddev) {}

  Status Accumulate(const Value& v) override {
    if (v.is_null()) return Status::OK();
    STARBURST_ASSIGN_OR_RETURN(double x, v.AsDouble());
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    return Status::OK();
  }

  Result<Value> Finalize() override {
    if (count_ < 2) return Value::Null();  // sample variance undefined
    double variance = m2_ / static_cast<double>(count_ - 1);
    return Value::Double(stddev_ ? std::sqrt(variance) : variance);
  }

 private:
  bool stddev_;
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

Result<DataType> NumericToDouble(const DataType& in) {
  if (!in.is_numeric() && in.id != TypeId::kNull) {
    return Status::TypeError("statistical aggregates expect numeric input");
  }
  return DataType::Double();
}

}  // namespace

/// §2's externally-defined aggregate example
/// ("StandardDeviation(Salary)"): STDDEV and VARIANCE register through the
/// same interface as the built-ins and are usable anywhere they are.
Status RegisterStatisticsFunctions(Database* db) {
  FunctionRegistry& functions = db->catalog().functions();
  STARBURST_RETURN_IF_ERROR(functions.RegisterAggregate(AggregateFunctionDef{
      "STDDEV", NumericToDouble,
      [] { return std::make_unique<VarianceState>(/*stddev=*/true); }}));
  return functions.RegisterAggregate(AggregateFunctionDef{
      "VARIANCE", NumericToDouble,
      [] { return std::make_unique<VarianceState>(/*stddev=*/false); }});
}

}  // namespace starburst::ext
