file(REMOVE_RECURSE
  "libstarburst_ext.a"
)
