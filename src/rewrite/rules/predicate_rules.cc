#include <map>
#include <set>

#include "rewrite/rule_engine.h"

namespace starburst::rewrite {

using qgm::Box;
using qgm::BoxKind;
using qgm::Expr;
using qgm::ExprPtr;
using qgm::Quantifier;
using qgm::QuantifierType;

namespace {

/// A push-down candidate: predicate #index of `box` migrates into the
/// select box `target`, possibly through an outer join's PF quantifier
/// (`through_pf`), per §5: outer join "does not keep predicates, but can
/// receive them if they refer only to columns of the PF setformer, in
/// which case they are pushed *through* the outer join operation".
struct PushdownCandidate {
  size_t predicate_index = 0;
  Quantifier* via = nullptr;      // the F quantifier of `box` pushed through
  Box* lower = nullptr;           // via->input
  Quantifier* through_pf = nullptr;  // set when lower is an outer-join box
};

bool HeadIsInlinable(const Box& lower, const Expr& predicate,
                     const Quantifier* via) {
  std::vector<std::pair<Quantifier*, size_t>> refs;
  predicate.CollectColumnRefs(&refs);
  for (const auto& [q, col] : refs) {
    if (q != via) continue;
    if (col >= lower.head.size() || lower.head[col].expr == nullptr) {
      return false;
    }
  }
  return true;
}

bool FindPushdown(const RuleContext& ctx, PushdownCandidate* out) {
  Box* box = ctx.box;
  if (box->kind != BoxKind::kSelect) return false;
  for (size_t i = 0; i < box->predicates.size(); ++i) {
    const Expr& p = *box->predicates[i];
    // Subquery tests stay where their quantifier lives.
    if (p.kind == Expr::Kind::kExistsTest || p.kind == Expr::Kind::kQuantCompare) {
      continue;
    }
    std::set<Quantifier*> used;
    p.CollectQuantifiers(&used);
    Quantifier* via = nullptr;
    bool ok = true;
    for (Quantifier* q : used) {
      if (q->owner != box) continue;  // correlation travels along fine
      if (via != nullptr && q != via) {
        ok = false;  // touches two of our iterators: a join predicate
        break;
      }
      via = q;
      if (q->type != QuantifierType::kForEach) ok = false;
    }
    if (!ok || via == nullptr) continue;
    Box* lower = via->input;
    if (lower == nullptr || lower->kind != BoxKind::kSelect) continue;
    if (CountReferences(*ctx.graph, lower) != 1) continue;
    if (!HeadIsInlinable(*lower, p, via)) continue;

    // Does `lower` contain PF quantifiers (i.e. is it an outer join)?
    Quantifier* pf = nullptr;
    bool has_pf = false;
    for (const auto& lq : lower->quantifiers) {
      if (lq->type == QuantifierType::kPreservedForEach) {
        has_pf = true;
        pf = lq.get();
      }
    }
    if (!has_pf) {
      out->predicate_index = i;
      out->via = via;
      out->lower = lower;
      out->through_pf = nullptr;
      return true;
    }

    // Outer-join box: receive only predicates that, once inlined, touch
    // the PF setformer alone — and push them through it.
    std::unique_ptr<Expr> inlined = p.Clone();
    std::vector<const Expr*> replacements;
    for (const auto& h : lower->head) replacements.push_back(h.expr.get());
    ExprPtr holder = std::move(inlined);
    qgm::InlineIntoExpr(&holder, via, replacements);
    std::set<Quantifier*> inner_used;
    holder->CollectQuantifiers(&inner_used);
    bool pf_only = !inner_used.empty();
    for (Quantifier* q : inner_used) {
      if (q->owner != lower) continue;  // correlation
      if (q != pf) pf_only = false;
    }
    if (!pf_only || pf == nullptr) continue;
    // Through-target must be a select box we exclusively feed, or a base
    // table we can wrap.
    Box* through = pf->input;
    if (through == nullptr) continue;
    if (through->kind == BoxKind::kSelect &&
        CountReferences(*ctx.graph, through) != 1) {
      continue;
    }
    if (through->kind != BoxKind::kSelect &&
        through->kind != BoxKind::kBaseTable) {
      continue;
    }
    out->predicate_index = i;
    out->via = via;
    out->lower = lower;
    out->through_pf = pf;
    return true;
  }
  return false;
}

/// Wraps a base-table box in an identity SELECT box so it can hold
/// received predicates; repoints only `q` (base boxes may be shared).
Box* WrapWithSelect(qgm::Graph* graph, Quantifier* q) {
  Box* base = q->input;
  Box* wrapper = graph->NewBox(BoxKind::kSelect);
  std::unique_ptr<Quantifier> inner_q =
      graph->NewQuantifier(QuantifierType::kForEach, base);
  Quantifier* iq = wrapper->AddQuantifier(std::move(inner_q));
  iq->alias = q->alias;
  for (size_t i = 0; i < base->head.size(); ++i) {
    wrapper->head.push_back(qgm::HeadColumn{
        base->head[i].name, base->head[i].type,
        qgm::MakeColumnRef(iq, i, base->head[i].type)});
  }
  q->input = wrapper;
  return wrapper;
}

Status PushdownAction(RuleContext& ctx) {
  PushdownCandidate c;
  if (!FindPushdown(ctx, &c)) {
    return Status::Internal("pushdown: candidate vanished");
  }
  Box* box = ctx.box;
  ExprPtr p = std::move(box->predicates[c.predicate_index]);
  box->predicates.erase(box->predicates.begin() + c.predicate_index);

  // Rewrite through the lower head.
  std::vector<const Expr*> replacements;
  for (const auto& h : c.lower->head) replacements.push_back(h.expr.get());
  qgm::InlineIntoExpr(&p, c.via, replacements);

  if (c.through_pf == nullptr) {
    c.lower->predicates.push_back(std::move(p));
    return Status::OK();
  }

  // Push *through* the outer join: the predicate lands below the PF
  // setformer, filtering the preserved table before preservation.
  Box* through = c.through_pf->input;
  if (through->kind == BoxKind::kBaseTable) {
    through = WrapWithSelect(ctx.graph, c.through_pf);
  }
  // Map PF-relative references onto the through-box's own quantifier
  // space by inlining its head expressions.
  std::vector<const Expr*> through_replacements;
  for (const auto& h : through->head) {
    through_replacements.push_back(h.expr.get());
  }
  qgm::InlineIntoExpr(&p, c.through_pf, through_replacements);
  through->predicates.push_back(std::move(p));
  return Status::OK();
}

/// Push through GROUP BY: a consumer predicate over group-key outputs
/// filters groups; it is equivalent (and cheaper) applied to the grouping
/// input rows.
struct GroupByPushdown {
  size_t predicate_index = 0;
  Quantifier* via = nullptr;  // F over the GROUP BY box
  Box* gb = nullptr;
  Box* input = nullptr;       // the select box under the GROUP BY
};

bool FindGroupByPushdown(const RuleContext& ctx, GroupByPushdown* out) {
  Box* box = ctx.box;
  if (box->kind != BoxKind::kSelect) return false;
  for (size_t i = 0; i < box->predicates.size(); ++i) {
    const Expr& p = *box->predicates[i];
    if (p.kind == Expr::Kind::kExistsTest || p.kind == Expr::Kind::kQuantCompare) {
      continue;
    }
    std::set<Quantifier*> used;
    p.CollectQuantifiers(&used);
    Quantifier* via = nullptr;
    bool ok = true;
    for (Quantifier* q : used) {
      if (q->owner != box) continue;
      if (via != nullptr && q != via) {
        ok = false;
        break;
      }
      via = q;
      if (q->type != QuantifierType::kForEach) ok = false;
    }
    if (!ok || via == nullptr) continue;
    Box* gb = via->input;
    if (gb == nullptr || gb->kind != BoxKind::kGroupBy) continue;
    if (CountReferences(*ctx.graph, gb) != 1) continue;
    if (gb->quantifiers.size() != 1) continue;
    Box* input = gb->quantifiers[0]->input;
    if (input == nullptr || input->kind != BoxKind::kSelect) continue;
    if (CountReferences(*ctx.graph, input) != 1) continue;
    // Every referenced column must be a group key (not an aggregate).
    std::vector<std::pair<Quantifier*, size_t>> refs;
    p.CollectColumnRefs(&refs);
    bool keys_only = true;
    for (const auto& [q, col] : refs) {
      if (q != via) continue;
      if (col >= gb->group_keys.size()) keys_only = false;
    }
    if (!keys_only) continue;
    out->predicate_index = i;
    out->via = via;
    out->gb = gb;
    out->input = input;
    return true;
  }
  return false;
}

Status GroupByPushdownAction(RuleContext& ctx) {
  GroupByPushdown c;
  if (!FindGroupByPushdown(ctx, &c)) {
    return Status::Internal("groupby pushdown: candidate vanished");
  }
  Box* box = ctx.box;
  ExprPtr p = std::move(box->predicates[c.predicate_index]);
  box->predicates.erase(box->predicates.begin() + c.predicate_index);

  // Step 1: consumer refs -> GROUP BY key expressions (over gb_q).
  std::vector<const Expr*> gb_replacements;
  for (const auto& h : c.gb->head) gb_replacements.push_back(h.expr.get());
  qgm::InlineIntoExpr(&p, c.via, gb_replacements);
  // Step 2: gb_q refs -> the input select's head expressions.
  Quantifier* gb_q = c.gb->quantifiers[0].get();
  std::vector<const Expr*> in_replacements;
  for (const auto& h : c.input->head) in_replacements.push_back(h.expr.get());
  qgm::InlineIntoExpr(&p, gb_q, in_replacements);
  c.input->predicates.push_back(std::move(p));
  return Status::OK();
}

/// Predicate transitivity ("implied predicates", "predicates may be
/// replicated"): from column-equality classes, derive missing equalities
/// and replicate single-column restrictions onto equivalent columns.
struct ColRef {
  Quantifier* q;
  size_t col;
  bool operator<(const ColRef& o) const {
    return q != o.q ? q < o.q : col < o.col;
  }
  bool operator==(const ColRef& o) const { return q == o.q && col == o.col; }
};

std::vector<ExprPtr> DeriveTransitive(const Box& box) {
  // Union-find over column refs joined by `=`.
  std::map<ColRef, ColRef> parent;
  std::function<ColRef(ColRef)> find = [&](ColRef x) {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    ColRef root = find(it->second);
    parent[x] = root;
    return root;
  };
  auto unite = [&](ColRef a, ColRef b) {
    ColRef ra = find(a), rb = find(b);
    if (!(ra == rb)) parent[ra] = rb;
  };
  for (const auto& p : box.predicates) {
    if (!qgm::IsColumnEquality(*p)) continue;
    const Expr& l = *p->children[0];
    const Expr& r = *p->children[1];
    if (l.quantifier->owner != &box || r.quantifier->owner != &box) continue;
    unite(ColRef{l.quantifier, l.column}, ColRef{r.quantifier, r.column});
  }
  // Group members per class.
  std::map<ColRef, std::vector<ColRef>> classes;
  for (const auto& [member, dummy] : parent) {
    (void)dummy;
    classes[find(member)].push_back(member);
  }
  for (auto& [root, members] : classes) {
    if (std::find(members.begin(), members.end(), root) == members.end()) {
      members.push_back(root);
    }
  }

  std::set<std::string> existing;
  for (const auto& p : box.predicates) existing.insert(p->ToString());

  std::vector<ExprPtr> derived;
  auto add_if_new = [&](ExprPtr e) {
    std::string key = e->ToString();
    if (existing.insert(key).second) derived.push_back(std::move(e));
  };

  // Replicate `col op literal` onto equivalence-class siblings.
  for (const auto& p : box.predicates) {
    if (p->kind != Expr::Kind::kBinary) continue;
    switch (p->bop) {
      case ast::BinaryOp::kEq:
      case ast::BinaryOp::kLt:
      case ast::BinaryOp::kLe:
      case ast::BinaryOp::kGt:
      case ast::BinaryOp::kGe:
        break;
      default:
        continue;
    }
    const Expr* cref = nullptr;
    const Expr* lit = nullptr;
    bool col_left = false;
    if (p->children[0]->kind == Expr::Kind::kColumnRef &&
        p->children[1]->kind == Expr::Kind::kLiteral) {
      cref = p->children[0].get();
      lit = p->children[1].get();
      col_left = true;
    } else if (p->children[1]->kind == Expr::Kind::kColumnRef &&
               p->children[0]->kind == Expr::Kind::kLiteral) {
      cref = p->children[1].get();
      lit = p->children[0].get();
    } else {
      continue;
    }
    if (cref->quantifier->owner != &box) continue;
    ColRef self{cref->quantifier, cref->column};
    auto it = classes.find(find(self));
    if (it == classes.end()) continue;
    for (const ColRef& sibling : it->second) {
      if (sibling == self) continue;
      ExprPtr scol = qgm::MakeColumnRef(sibling.q, sibling.col,
                                        sibling.q->ColumnType(sibling.col));
      ExprPtr copy =
          col_left ? qgm::MakeBinary(p->bop, std::move(scol), lit->Clone(),
                                     DataType::Bool())
                   : qgm::MakeBinary(p->bop, lit->Clone(), std::move(scol),
                                     DataType::Bool());
      add_if_new(std::move(copy));
    }
  }
  return derived;
}

}  // namespace

void RegisterPredicateRules(RuleEngine* engine) {
  // Replication runs before migration so replicas exist to be migrated.
  (void)engine->AddRule(RewriteRule{
      "predicate_transitivity", "predicate_migration", /*priority=*/6,
      /*weight=*/1.0,
      [](const RuleContext& ctx) {
        if (ctx.box->kind != BoxKind::kSelect) return false;
        return !DeriveTransitive(*ctx.box).empty();
      },
      [](RuleContext& ctx) -> Status {
        std::vector<ExprPtr> derived = DeriveTransitive(*ctx.box);
        for (auto& e : derived) ctx.box->predicates.push_back(std::move(e));
        return Status::OK();
      }});
  (void)engine->AddRule(RewriteRule{
      "predicate_pushdown", "predicate_migration", /*priority=*/5,
      /*weight=*/1.0,
      [](const RuleContext& ctx) {
        PushdownCandidate c;
        return FindPushdown(ctx, &c);
      },
      PushdownAction});
  (void)engine->AddRule(RewriteRule{
      "predicate_through_groupby", "predicate_migration", /*priority=*/5,
      /*weight=*/1.0,
      [](const RuleContext& ctx) {
        GroupByPushdown c;
        return FindGroupByPushdown(ctx, &c);
      },
      GroupByPushdownAction});
}

}  // namespace starburst::rewrite
