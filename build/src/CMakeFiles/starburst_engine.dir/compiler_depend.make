# Empty compiler generated dependencies file for starburst_engine.
# This may be replaced when dependencies are built.
