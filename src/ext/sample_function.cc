#include "ext/extensions.h"

namespace starburst::ext {

/// §2's table-function example: "the function SAMPLE(table, int) might
/// produce a new table consisting of int rows of table". Deterministic
/// stride sampling so tests are stable.
Status RegisterSampleFunction(Database* db) {
  TableFunctionDef def;
  def.name = "SAMPLE";
  def.infer_schema = [](const std::vector<TableSchema>& inputs,
                        const std::vector<Value>& args) -> Result<TableSchema> {
    if (inputs.size() != 1) {
      return Status::SemanticError("SAMPLE takes exactly one table argument");
    }
    if (args.size() != 1 || args[0].type_id() != TypeId::kInt) {
      return Status::SemanticError("SAMPLE takes one integer row count");
    }
    if (args[0].int_value() < 0) {
      return Status::SemanticError("SAMPLE row count must be non-negative");
    }
    return inputs[0];
  };
  def.eval = [](const std::vector<std::vector<Row>>& inputs,
                const std::vector<Value>& args) -> Result<std::vector<Row>> {
    const std::vector<Row>& table = inputs[0];
    size_t want = static_cast<size_t>(args[0].int_value());
    std::vector<Row> out;
    if (want == 0 || table.empty()) return out;
    if (want >= table.size()) return table;
    double stride = static_cast<double>(table.size()) / static_cast<double>(want);
    for (size_t i = 0; i < want; ++i) {
      out.push_back(table[static_cast<size_t>(i * stride)]);
    }
    return out;
  };
  return db->catalog().functions().RegisterTableFunction(std::move(def));
}

}  // namespace starburst::ext
