#ifndef STARBURST_COMMON_RESULT_H_
#define STARBURST_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace starburst {

/// Holds either a value of type T or a non-OK Status. The engine's
/// exception-free analogue of `T` with failure.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status, so `return value;` and
  /// `return Status::NotFound(...)` both work.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out; the Result must hold a value.
  T TakeValue() {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

 private:
  std::variant<T, Status> data_;
};

/// Evaluates `expr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value into `lhs` (which may be a declaration).
#define STARBURST_ASSIGN_OR_RETURN(lhs, expr)                   \
  STARBURST_ASSIGN_OR_RETURN_IMPL(                              \
      STARBURST_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define STARBURST_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = tmp.TakeValue();

#define STARBURST_CONCAT_(a, b) STARBURST_CONCAT_IMPL_(a, b)
#define STARBURST_CONCAT_IMPL_(a, b) a##b

}  // namespace starburst

#endif  // STARBURST_COMMON_RESULT_H_
