#ifndef STARBURST_EXEC_PLAN_REFINER_H_
#define STARBURST_EXEC_PLAN_REFINER_H_

#include <map>
#include <set>
#include <vector>

#include "exec/operators.h"
#include "exec/parallel/gather.h"

namespace starburst::exec {

class PlanRefiner;

/// Registry of DBC-defined QES operators ("adding new operators to the QES
/// has been trivial"). An optimizer plan node with Lolepop::kExtension and
/// a registered ext_name refines through the DBC's builder.
class ExtOperatorRegistry {
 public:
  using Builder = std::function<Result<OperatorPtr>(const optimizer::Plan&,
                                                    PlanRefiner&)>;
  static ExtOperatorRegistry& Global();

  Status Register(const std::string& name, Builder builder);
  bool Contains(const std::string& name) const;
  Result<const Builder*> Lookup(const std::string& name) const;

 private:
  std::map<std::string, Builder> builders_;
};

/// Plan Refinement (§3, Figure 1): turns the optimizer's chosen QEP into
/// the executable operator tree the QES interprets — compiling every
/// predicate and head expression against its operator's slot layout,
/// instantiating subquery runtimes, and wiring dependent-join parameter
/// passing.
class PlanRefiner {
 public:
  struct Options {
    SubqueryCacheMode cache_mode = SubqueryCacheMode::kMemo;
    double ship_delay_us = 0;
    /// Semi-naive recursion (deltas only); false = naive full-table
    /// iteration, for ablation benchmarks.
    bool semi_naive_recursion = true;
    /// When set, every refined operator gets a node in this tree (with
    /// the plan's estimates) and accumulates its runtime stats into it.
    /// The tree must outlive execution.
    obs::PlanStatsTree* stats = nullptr;
    /// Worker count for morsel-driven parallel execution. > 1 inserts a
    /// Gather over the largest parallel-safe subtrees, which then run as
    /// that many pipeline clones.
    size_t parallelism = 1;
    /// Worth gate: estimated base-table rows a subtree must scan before
    /// it is worth parallelizing (thread handoff isn't free). 0 = always.
    double parallel_min_rows = 1024;
    /// Rows a batched operator stages per NextBatch call; the caller
    /// (Executor / Database) installs this on the ExecContext before
    /// opening the refined tree. 1 pins exact row-at-a-time behavior.
    size_t batch_size = RowBatch::kDefaultCapacity;
    /// Build budgets (bytes, 0 = unlimited) handed to the blocking
    /// operators: sorts spill runs past sort_memory_bytes; aggregations
    /// and DISTINCT grace-partition past agg_memory_bytes. The query-
    /// wide cap lives on the ExecContext, not here.
    uint64_t sort_memory_bytes = 0;
    uint64_t agg_memory_bytes = 0;
  };

  PlanRefiner(const Catalog* catalog,
              const std::map<const qgm::Box*, optimizer::PlanPtr>* box_plans,
              Options options)
      : catalog_(catalog), box_plans_(box_plans), options_(options) {}

  Result<OperatorPtr> Refine(const optimizer::PlanPtr& plan);

  /// Builds a fresh operator tree for a (sub)query box using the
  /// optimizer's plan for it. Also used by the engine for UPDATE/DELETE
  /// subquery predicates.
  Result<OperatorPtr> BuildBoxOperator(const qgm::Box* box);

  /// Compiles an expression against an explicit layout, with subquery
  /// support through this refiner. Parameters that cannot be resolved in
  /// the layout are reported through `free_params` (may be null).
  Result<CompiledExprPtr> Compile(
      const qgm::Expr& e, const std::vector<optimizer::ColumnBinding>& layout,
      std::set<ExecContext::ParamKey>* free_params);

 private:
  /// Builds the operator for `plan` and, when stats collection is on,
  /// surrounds it with a PlanStatsTree node nested under the current one.
  Result<OperatorPtr> Build(const optimizer::Plan& plan);
  /// The big LOLEPOP switch (no stats bookkeeping).
  Result<OperatorPtr> BuildOp(const optimizer::Plan& plan);
  Result<OperatorPtr> BuildJoin(const optimizer::Plan& plan);
  Result<OperatorPtr> BuildGroupAgg(const optimizer::Plan& plan);
  /// Compiles the grouping machinery of a kGroupAgg plan over an already
  /// built input stream (shared by the serial and the per-partition path).
  Result<OperatorPtr> BuildGroupAggOver(const optimizer::Plan& plan,
                                        OperatorPtr input);

  /// True when `plan` is the root of a subtree worth running parallel.
  bool ShouldParallelize(const optimizer::Plan& plan) const;
  /// Builds a Gather (plain or aggregating) over `plan`, cloning the
  /// parallel-safe subtree options_.parallelism times.
  Result<OperatorPtr> BuildParallel(const optimizer::Plan& plan);
  void CollectParallelNodes(const optimizer::Plan& plan,
                            parallel::ParallelPlanContext* pctx,
                            std::vector<const optimizer::Plan*>* join_nodes);

  CompileEnv EnvFor(const std::vector<optimizer::ColumnBinding>* layout);

  const Catalog* catalog_;
  const std::map<const qgm::Box*, optimizer::PlanPtr>* box_plans_;
  Options options_;
  /// Innermost set records correlation parameters compiled in the current
  /// subtree; dependent joins intercept and bind them from outer rows.
  std::vector<std::set<ExecContext::ParamKey>*> param_scopes_;
  /// Current ancestor in options_.stats while building (empty = root).
  std::vector<obs::PlanStatsTree::Node*> stats_stack_;
  /// Non-null while building parallel pipeline clones: scans become
  /// morsel scans and hash joins become probes of the shared tables.
  parallel::ParallelPlanContext* parallel_ctx_ = nullptr;
  /// Per plan node, the stats node shared by all clones of that node
  /// (EXPLAIN ANALYZE shows one aggregated line, not P duplicates).
  std::map<const optimizer::Plan*, obs::PlanStatsTree::Node*>*
      parallel_stats_ = nullptr;
};

}  // namespace starburst::exec

#endif  // STARBURST_EXEC_PLAN_REFINER_H_
