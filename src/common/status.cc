#include "common/status.h"

namespace starburst {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kSyntaxError: return "SyntaxError";
    case StatusCode::kSemanticError: return "SemanticError";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kTimeout: return "Timeout";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace starburst
