#ifndef STARBURST_OPTIMIZER_JOIN_ENUMERATOR_H_
#define STARBURST_OPTIMIZER_JOIN_ENUMERATOR_H_

#include <functional>
#include <map>

#include "optimizer/star.h"

namespace starburst::optimizer {

/// The join enumerator (§6, [ONO88]): "enumerates all valid join sequences
/// by iteratively constructing progressively larger sets of iterators from
/// two smaller iterator sets". Exploits implied predicates and composite
/// inners; both can be pruned ("bushy trees" / Cartesian products), as
/// System R and R* always did.
class JoinEnumerator {
 public:
  struct Options {
    /// Composite inners ("bushy trees"); R*/System R pruned these.
    bool allow_composite_inner = true;
    /// Joins with no join predicate.
    bool allow_cartesian = false;
    /// Plans retained per iterator set (cheapest + interesting orders).
    size_t max_plans_per_set = 4;
  };

  struct Stats {
    uint64_t pairs_considered = 0;
    uint64_t plans_kept = 0;
    uint64_t sets_built = 0;
  };

  /// Plans the access to one iterator with its single-iterator predicates
  /// applied; supplied by the Optimizer (it knows about derived tables,
  /// remote sites, and DBC access methods).
  using AccessFn = std::function<Result<std::vector<PlanPtr>>(
      const qgm::Quantifier*, const std::vector<const qgm::Expr*>&)>;

  JoinEnumerator(PlanGenerator* generator, Options options)
      : generator_(generator), options_(options) {}

  /// Enumerates join orders for `iterators` (the F setformers of a SELECT
  /// box) under `predicates` (conjuncts referencing those iterators only).
  /// Returns the retained plans for the full set, cheapest first.
  Result<std::vector<PlanPtr>> Enumerate(
      const qgm::Box* box,
      const std::vector<const qgm::Quantifier*>& iterators,
      const std::vector<const qgm::Expr*>& predicates, const AccessFn& access);

  Stats& stats() { return stats_; }
  const Options& options() const { return options_; }

 private:
  using Mask = uint64_t;

  /// Keeps cheapest overall plus the cheapest plan per distinct
  /// interesting order, capped.
  void AddPlan(std::vector<PlanPtr>* plans, PlanPtr plan);

  PlanGenerator* generator_;
  Options options_;
  Stats stats_;
};

}  // namespace starburst::optimizer

#endif  // STARBURST_OPTIMIZER_JOIN_ENUMERATOR_H_
