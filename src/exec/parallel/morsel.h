#ifndef STARBURST_EXEC_PARALLEL_MORSEL_H_
#define STARBURST_EXEC_PARALLEL_MORSEL_H_

#include <algorithm>
#include <atomic>

#include "storage/page.h"

namespace starburst::exec::parallel {

/// An atomic page-range dispenser: every scan clone under one Gather
/// shares a MorselSource and claims disjoint [begin, end) page ranges
/// until the table is exhausted. Reset() rearms it for a re-Open.
class MorselSource {
 public:
  static constexpr PageNo kDefaultGrain = 4;

  void Reset(PageNo total_pages, PageNo grain = kDefaultGrain) {
    total_ = total_pages;
    grain_ = std::max<PageNo>(grain, 1);
    next_.store(0, std::memory_order_relaxed);
  }

  /// Claims the next morsel; false when the table is fully dispensed.
  bool Claim(PageNo* begin, PageNo* end) {
    PageNo start = next_.fetch_add(grain_, std::memory_order_relaxed);
    if (start >= total_) return false;
    *begin = start;
    *end = std::min<PageNo>(start + grain_, total_);
    return true;
  }

 private:
  std::atomic<PageNo> next_{0};
  PageNo total_ = 0;
  PageNo grain_ = kDefaultGrain;
};

}  // namespace starburst::exec::parallel

#endif  // STARBURST_EXEC_PARALLEL_MORSEL_H_
