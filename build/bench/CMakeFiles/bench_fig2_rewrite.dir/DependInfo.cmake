
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_rewrite.cc" "bench/CMakeFiles/bench_fig2_rewrite.dir/bench_fig2_rewrite.cc.o" "gcc" "bench/CMakeFiles/bench_fig2_rewrite.dir/bench_fig2_rewrite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starburst_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_qgm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
