# Empty dependencies file for starburst_parser.
# This may be replaced when dependencies are built.
