#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace starburst {

namespace {

int ThreeWay(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
int ThreeWay(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

}  // namespace

DataType Value::type() const {
  TypeId id = type_id();
  if (id == TypeId::kExtension) return DataType::Extension(ext_value().type_name);
  return DataType(id);
}

Result<double> Value::AsDouble() const {
  switch (type_id()) {
    case TypeId::kInt: return static_cast<double>(int_value());
    case TypeId::kDouble: return double_value();
    default:
      return Status::TypeError("value " + ToString() + " is not numeric");
  }
}

Result<int64_t> Value::AsInt() const {
  switch (type_id()) {
    case TypeId::kInt: return int_value();
    case TypeId::kDouble: return static_cast<int64_t>(double_value());
    default:
      return Status::TypeError("value " + ToString() + " is not numeric");
  }
}

Result<int> Value::Compare(const Value& other) const {
  TypeId a = type_id(), b = other.type_id();
  if (a == TypeId::kNull || b == TypeId::kNull) {
    return Status::TypeError("cannot compare NULL; use three-valued logic");
  }
  if (a == b) {
    switch (a) {
      case TypeId::kBool:
        return ThreeWay(static_cast<int64_t>(bool_value()),
                        static_cast<int64_t>(other.bool_value()));
      case TypeId::kInt: return ThreeWay(int_value(), other.int_value());
      case TypeId::kDouble: return ThreeWay(double_value(), other.double_value());
      case TypeId::kString:
        return string_value().compare(other.string_value()) < 0
                   ? -1
                   : (string_value() == other.string_value() ? 0 : 1);
      case TypeId::kExtension: {
        const Ext& x = ext_value();
        const Ext& y = other.ext_value();
        if (x.type_name != y.type_name) {
          return Status::TypeError("comparing distinct extension types " +
                                   x.type_name + " and " + y.type_name);
        }
        STARBURST_ASSIGN_OR_RETURN(
            const ExtensionTypeDef* def,
            TypeRegistry::Global().Lookup(x.type_name));
        return def->compare(x.payload, y.payload);
      }
      default: break;
    }
  }
  // Numeric cross-comparison.
  if ((a == TypeId::kInt || a == TypeId::kDouble) &&
      (b == TypeId::kInt || b == TypeId::kDouble)) {
    return ThreeWay(AsDouble().value(), other.AsDouble().value());
  }
  return Status::TypeError("cannot compare " + type().ToString() + " with " +
                           other.type().ToString());
}

int Value::CompareTotal(const Value& other) const {
  bool an = is_null(), bn = other.is_null();
  if (an && bn) return 0;
  if (an) return -1;
  if (bn) return 1;
  Result<int> cmp = Compare(other);
  if (cmp.ok()) return *cmp;
  // Fall back to ordering by type tag, then rendered form — total but
  // arbitrary; only reachable for heterogeneous columns, which the binder
  // rejects.
  if (type_id() != other.type_id()) {
    return static_cast<int>(type_id()) < static_cast<int>(other.type_id()) ? -1 : 1;
  }
  std::string l = ToString(), r = other.ToString();
  return l < r ? -1 : (l == r ? 0 : 1);
}

size_t Value::Hash() const {
  switch (type_id()) {
    case TypeId::kNull: return 0x9e3779b97f4a7c15ull;
    case TypeId::kBool: return std::hash<bool>{}(bool_value());
    case TypeId::kInt: return std::hash<int64_t>{}(int_value());
    case TypeId::kDouble: {
      double d = double_value();
      // Hash integral doubles like the equal int so numeric joins hash-agree.
      if (std::floor(d) == d && std::abs(d) < 1e15) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case TypeId::kString: return std::hash<std::string>{}(string_value());
    case TypeId::kExtension:
      return std::hash<std::string>{}(ext_value().payload) ^
             std::hash<std::string>{}(ext_value().type_name);
  }
  return 0;
}

size_t Value::MemoryBytes() const {
  size_t bytes = sizeof(Value);
  switch (type_id()) {
    case TypeId::kString: {
      const std::string& s = string_value();
      // SSO strings keep their payload inside sizeof(Value).
      if (s.capacity() > sizeof(std::string)) bytes += s.capacity();
      break;
    }
    case TypeId::kExtension: {
      const Ext& e = ext_value();
      bytes += e.type_name.capacity() + e.payload.capacity();
      break;
    }
    default:
      break;
  }
  return bytes;
}

std::string Value::ToString() const {
  switch (type_id()) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return bool_value() ? "TRUE" : "FALSE";
    case TypeId::kInt: return std::to_string(int_value());
    case TypeId::kDouble: {
      std::ostringstream oss;
      oss << double_value();
      return oss.str();
    }
    case TypeId::kString: return "'" + string_value() + "'";
    case TypeId::kExtension: {
      auto def = TypeRegistry::Global().Lookup(ext_value().type_name);
      if (def.ok()) return (*def)->to_string(ext_value().payload);
      return ext_value().type_name + "<unregistered>";
    }
  }
  return "?";
}

}  // namespace starburst
