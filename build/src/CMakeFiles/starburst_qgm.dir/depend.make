# Empty dependencies file for starburst_qgm.
# This may be replaced when dependencies are built.
