#include "storage/storage_manager.h"

namespace starburst {

namespace {

/// Fallback range scan for storage managers without a page-bounded walk:
/// drains a full scan and keeps rows whose Rid lands in the range.
class FilteredRangeScanIterator : public TableScanIterator {
 public:
  FilteredRangeScanIterator(std::unique_ptr<TableScanIterator> inner,
                            PageNo begin_page, PageNo end_page)
      : inner_(std::move(inner)), begin_(begin_page), end_(end_page) {}

  Result<bool> Next(Row* row, Rid* rid) override {
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, inner_->Next(row, rid));
      if (!more) return false;
      if (rid->page >= begin_ && rid->page < end_) return true;
    }
  }

 private:
  std::unique_ptr<TableScanIterator> inner_;
  PageNo begin_, end_;
};

}  // namespace

Result<size_t> TableScanIterator::NextBlock(Row* rows, Rid* rids,
                                            size_t max_rows) {
  size_t n = 0;
  while (n < max_rows) {
    STARBURST_ASSIGN_OR_RETURN(bool more, Next(&rows[n], &rids[n]));
    if (!more) break;
    ++n;
  }
  return n;
}

std::unique_ptr<TableScanIterator> TableStorage::NewRangeScan(
    PageNo begin_page, PageNo end_page) {
  return std::make_unique<FilteredRangeScanIterator>(NewScan(), begin_page,
                                                     end_page);
}

StorageManagerRegistry::StorageManagerRegistry() {
  (void)Register(MakeHeapStorageManager());
  (void)Register(MakeFixedStorageManager());
}

Status StorageManagerRegistry::Register(std::unique_ptr<StorageManager> manager) {
  std::string key = IdentUpper(manager->name());
  if (!managers_.emplace(key, std::move(manager)).second) {
    return Status::AlreadyExists("storage manager '" + key + "' exists");
  }
  return Status::OK();
}

Result<StorageManager*> StorageManagerRegistry::Lookup(
    const std::string& name) const {
  auto it = managers_.find(IdentUpper(name));
  if (it == managers_.end()) {
    return Status::NotFound("storage manager '" + IdentUpper(name) +
                            "' not registered");
  }
  return it->second.get();
}

std::vector<std::string> StorageManagerRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& [name, m] : managers_) names.push_back(name);
  return names;
}

}  // namespace starburst
