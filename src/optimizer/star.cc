#include "optimizer/star.h"

#include <algorithm>
#include <set>

namespace starburst::optimizer {

using qgm::Expr;

Status StarRegistry::Add(Star star) {
  if (!star.generate) {
    return Status::InvalidArgument("STAR '" + star.name + "' has no body");
  }
  for (const auto& [nt, stars] : by_nonterminal_) {
    for (const Star& s : stars) {
      if (s.name == star.name) {
        return Status::AlreadyExists("STAR '" + star.name + "' already added");
      }
    }
  }
  std::string key = star.expands;
  by_nonterminal_[key].push_back(std::move(star));
  // Evaluation order within a nonterminal: a prioritized queue by rank.
  std::stable_sort(by_nonterminal_[key].begin(), by_nonterminal_[key].end(),
                   [](const Star& a, const Star& b) { return a.rank < b.rank; });
  ++count_;
  return Status::OK();
}

const std::vector<Star>* StarRegistry::ForNonterminal(
    const std::string& nonterminal) const {
  auto it = by_nonterminal_.find(nonterminal);
  return it == by_nonterminal_.end() ? nullptr : &it->second;
}

std::vector<std::string> StarRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& [nt, stars] : by_nonterminal_) {
    for (const Star& s : stars) names.push_back(s.name);
  }
  return names;
}

Result<std::vector<PlanPtr>> PlanGenerator::Expand(
    const std::string& nonterminal, const StarContext& ctx) {
  const std::vector<Star>* stars = registry_->ForNonterminal(nonterminal);
  if (stars == nullptr) {
    return Status::NotFound("no STAR defines nonterminal '" + nonterminal + "'");
  }
  std::vector<PlanPtr> alternatives;
  for (const Star& star : *stars) {
    if (star.rank > options_.max_rank) continue;  // rank pruning
    ++stats_.stars_evaluated;
    STARBURST_RETURN_IF_ERROR(star.generate(*this, ctx, &alternatives));
  }
  stats_.plans_generated += 0;  // counted per-plan by the stars
  return alternatives;
}

// ---------------------------------------------------------------------------
// The default STAR array
// ---------------------------------------------------------------------------

namespace {

bool ExprUsesBoxQuantifiers(const Expr& e, const qgm::Box* box,
                            const qgm::Quantifier* except) {
  std::set<qgm::Quantifier*> used;
  e.CollectQuantifiers(&used);
  for (qgm::Quantifier* q : used) {
    if (q == except) continue;
    if (q->owner == box) return true;
  }
  return false;
}

/// outer.slot = inner.slot pairs derivable from the join predicates;
/// predicates consumed this way are removed from `residual`.
std::vector<std::pair<size_t, size_t>> ExtractEquiKeys(
    const PlanPtr& outer, const PlanPtr& inner,
    const std::vector<const Expr*>& preds,
    std::vector<const Expr*>* residual) {
  std::vector<std::pair<size_t, size_t>> keys;
  for (const Expr* p : preds) {
    bool consumed = false;
    if (qgm::IsColumnEquality(*p)) {
      const Expr& l = *p->children[0];
      const Expr& r = *p->children[1];
      size_t lo = outer->FindSlot(l.quantifier, l.column);
      size_t ri = inner->FindSlot(r.quantifier, r.column);
      if (lo != Plan::kNoSlot && ri != Plan::kNoSlot) {
        keys.emplace_back(lo, ri);
        consumed = true;
      } else {
        lo = outer->FindSlot(r.quantifier, r.column);
        ri = inner->FindSlot(l.quantifier, l.column);
        if (lo != Plan::kNoSlot && ri != Plan::kNoSlot) {
          keys.emplace_back(lo, ri);
          consumed = true;
        }
      }
    }
    if (!consumed) residual->push_back(p);
  }
  return keys;
}

std::vector<ColumnBinding> JoinOutput(const StarContext& ctx) {
  std::vector<ColumnBinding> out = ctx.outer->output;
  bool outer_only = ctx.kind == JoinKind::kExists ||
                    ctx.kind == JoinKind::kAnti ||
                    ctx.kind == JoinKind::kOpAll ||
                    ctx.kind == JoinKind::kSetPred;
  if (!outer_only) {
    out.insert(out.end(), ctx.inner->output.begin(), ctx.inner->output.end());
  }
  return out;
}

void FillJoinCommon(Plan* join, const StarContext& ctx) {
  join->join_kind = ctx.kind;
  join->join_set_function = ctx.set_function;
  join->quant_compare = ctx.quant_compare;
  join->output = JoinOutput(ctx);
}

bool OrderSatisfies(const std::vector<std::pair<size_t, bool>>& have,
                    const std::vector<std::pair<size_t, bool>>& need) {
  if (need.size() > have.size()) return false;
  for (size_t i = 0; i < need.size(); ++i) {
    if (have[i] != need[i]) return false;
  }
  return true;
}

// -- TableAccess ------------------------------------------------------------

Status SeqScanStar(PlanGenerator& gen, const StarContext& ctx,
                   std::vector<PlanPtr>* out) {
  const qgm::Box* input = ctx.quantifier->input;
  if (input == nullptr || input->kind != qgm::BoxKind::kBaseTable) {
    return Status::OK();
  }
  auto scan = NewPlan(Lolepop::kScan);
  scan->quantifier = ctx.quantifier;
  scan->table = input->table;
  scan->scan_columns = ctx.needed_columns;
  if (scan->scan_columns.empty()) {
    for (size_t i = 0; i < input->head.size(); ++i) {
      scan->scan_columns.push_back(i);
    }
  }
  for (size_t c : scan->scan_columns) {
    scan->output.push_back(ColumnBinding{ctx.quantifier, nullptr, c});
  }
  scan->predicates = ctx.local_preds;
  gen.cost().FinishScan(scan.get());
  gen.CountPlan();
  // Stored tables may live at a remote site: the glue SHIP brings them
  // local (§6: "SHIP changes the site to the specified site").
  PlanPtr plan = scan;
  out->push_back(std::move(plan));
  return Status::OK();
}

Status IndexScanStar(PlanGenerator& gen, const StarContext& ctx,
                     std::vector<PlanPtr>* out) {
  const qgm::Box* input = ctx.quantifier->input;
  if (input == nullptr || input->kind != qgm::BoxKind::kBaseTable ||
      input->table == nullptr || gen.catalog() == nullptr) {
    return Status::OK();
  }
  const TableDef* table = input->table;
  for (const IndexDef* index : gen.catalog()->IndexesOnTable(table->name)) {
    if (!IdentEquals(index->access_method, "BTREE")) continue;
    if (index->key_columns.empty()) continue;
    std::optional<size_t> key_col = table->schema.FindColumn(index->key_columns[0]);
    if (!key_col.has_value()) continue;
    // An unbounded ordered scan of the whole index: rarely the cheapest,
    // but it carries an interesting order the enumerator retains ("the
    // cheapest plan per order"), feeding merge joins and ORDER BY.
    {
      auto ordered = NewPlan(Lolepop::kIndexScan);
      ordered->quantifier = ctx.quantifier;
      ordered->table = table;
      ordered->index = index;
      ordered->index_predicate = nullptr;
      ordered->scan_columns = ctx.needed_columns;
      if (ordered->scan_columns.empty()) {
        for (size_t i = 0; i < input->head.size(); ++i) {
          ordered->scan_columns.push_back(i);
        }
      }
      for (size_t c : ordered->scan_columns) {
        ordered->output.push_back(ColumnBinding{ctx.quantifier, nullptr, c});
      }
      ordered->predicates = ctx.local_preds;
      gen.cost().FinishIndexScan(ordered.get());
      gen.CountPlan();
      out->push_back(std::move(ordered));
    }
    // A sargable predicate: key-column comparison against an expression
    // free of this box's iterators (constants, or correlation parameters
    // for index-driven dependent joins).
    for (const Expr* p : ctx.local_preds) {
      if (p->kind != Expr::Kind::kBinary) continue;
      switch (p->bop) {
        case ast::BinaryOp::kEq:
        case ast::BinaryOp::kLt:
        case ast::BinaryOp::kLe:
        case ast::BinaryOp::kGt:
        case ast::BinaryOp::kGe:
          break;
        default:
          continue;
      }
      const Expr* col_side = p->children[0].get();
      const Expr* other = p->children[1].get();
      if (!(col_side->kind == Expr::Kind::kColumnRef &&
            col_side->quantifier == ctx.quantifier &&
            col_side->column == *key_col)) {
        std::swap(col_side, other);
      }
      if (!(col_side->kind == Expr::Kind::kColumnRef &&
            col_side->quantifier == ctx.quantifier &&
            col_side->column == *key_col)) {
        continue;
      }
      if (other->ReferencesQuantifier(ctx.quantifier)) continue;
      if (ExprUsesBoxQuantifiers(*other, ctx.quantifier->owner,
                                 ctx.quantifier)) {
        continue;  // references sibling iterators: not available here
      }
      auto iscan = NewPlan(Lolepop::kIndexScan);
      iscan->quantifier = ctx.quantifier;
      iscan->table = table;
      iscan->index = index;
      iscan->index_predicate = p;
      iscan->scan_columns = ctx.needed_columns;
      if (iscan->scan_columns.empty()) {
        for (size_t i = 0; i < input->head.size(); ++i) {
          iscan->scan_columns.push_back(i);
        }
      }
      for (size_t c : iscan->scan_columns) {
        iscan->output.push_back(ColumnBinding{ctx.quantifier, nullptr, c});
      }
      for (const Expr* q : ctx.local_preds) {
        if (q != p) iscan->predicates.push_back(q);
      }
      gen.cost().FinishIndexScan(iscan.get());
      gen.CountPlan();
      out->push_back(std::move(iscan));
      break;  // one sargable predicate per index suffices
    }
  }
  return Status::OK();
}

// -- JoinMethod ---------------------------------------------------------------

Status NlJoinStar(PlanGenerator& gen, const StarContext& ctx,
                  std::vector<PlanPtr>* out) {
  auto join = NewPlan(Lolepop::kNlJoin);
  join->inputs = {ctx.outer, ctx.inner};
  join->predicates = ctx.join_preds;
  FillJoinCommon(join.get(), ctx);
  gen.cost().FinishNlJoin(join.get());
  gen.CountPlan();
  out->push_back(std::move(join));
  return Status::OK();
}

Status NlJoinTempStar(PlanGenerator& gen, const StarContext& ctx,
                      std::vector<PlanPtr>* out) {
  // TEMP the inner for cheap rescans — pointless when the inner is
  // correlated with the outer row or already cheap to rescan.
  if (ctx.inner_dependent) return Status::OK();
  if (ctx.inner->props.rescan_cost <= ctx.inner->props.cardinality *
                                          gen.cost().params().cpu_tuple * 1.01) {
    return Status::OK();
  }
  auto temp = NewPlan(Lolepop::kTemp);
  temp->inputs = {ctx.inner};
  temp->output = ctx.inner->output;
  gen.cost().FinishTemp(temp.get());
  StarContext temped = ctx;
  temped.inner = temp;
  return NlJoinStar(gen, temped, out);
}

Status HashJoinStar(PlanGenerator& gen, const StarContext& ctx,
                    std::vector<PlanPtr>* out) {
  if (ctx.inner_dependent) return Status::OK();
  // Quantified compares (x <op> ANY/ALL/IN ...) carry three-valued
  // UNKNOWN semantics that only the NL join evaluates; the hash probe
  // would conflate "no match" with "compared UNKNOWN".
  if (ctx.quant_compare != nullptr) return Status::OK();
  switch (ctx.kind) {
    case JoinKind::kRegular:
    case JoinKind::kExists:
    case JoinKind::kAnti:
    case JoinKind::kLeftOuter:
      break;
    default:
      return Status::OK();  // scalar/ALL/set-predicate kinds: NL territory
  }
  std::vector<const Expr*> residual;
  std::vector<std::pair<size_t, size_t>> keys =
      ExtractEquiKeys(ctx.outer, ctx.inner, ctx.join_preds, &residual);
  if (keys.empty()) return Status::OK();
  auto join = NewPlan(Lolepop::kHashJoin);
  join->inputs = {ctx.outer, ctx.inner};
  join->equi_keys = std::move(keys);
  join->predicates = std::move(residual);
  FillJoinCommon(join.get(), ctx);
  // Output cardinality estimation needs every predicate; fold the equi
  // keys back in through the original join predicate list.
  auto all_preds = ctx.join_preds;
  auto saved = join->predicates;
  join->predicates = all_preds;
  gen.cost().FinishHashJoin(join.get());
  join->predicates = std::move(saved);
  gen.CountPlan();
  out->push_back(std::move(join));
  return Status::OK();
}

Status MergeJoinStar(PlanGenerator& gen, const StarContext& ctx,
                     std::vector<PlanPtr>* out) {
  if (ctx.inner_dependent) return Status::OK();
  // See HashJoinStar: quantified compares are NL-only.
  if (ctx.quant_compare != nullptr) return Status::OK();
  switch (ctx.kind) {
    case JoinKind::kRegular:
    case JoinKind::kExists:
    case JoinKind::kLeftOuter:
      break;
    default:
      return Status::OK();
  }
  std::vector<const Expr*> residual;
  std::vector<std::pair<size_t, size_t>> keys =
      ExtractEquiKeys(ctx.outer, ctx.inner, ctx.join_preds, &residual);
  if (keys.empty()) return Status::OK();

  // "The merge join requires its input table streams to be ordered by the
  // join columns. Required properties are achieved by additional glue
  // STARS that find the cheapest plan satisfying the requirements."
  std::vector<std::pair<size_t, bool>> outer_order, inner_order;
  for (const auto& [o, i] : keys) {
    outer_order.push_back({o, true});
    inner_order.push_back({i, true});
  }
  StarContext outer_glue;
  outer_glue.glue_input = ctx.outer;
  outer_glue.required_order = outer_order;
  outer_glue.required_site = ctx.outer->props.site;
  STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> outers,
                             gen.Expand("Glue", outer_glue));
  StarContext inner_glue;
  inner_glue.glue_input = ctx.inner;
  inner_glue.required_order = inner_order;
  inner_glue.required_site = ctx.inner->props.site;
  STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> inners,
                             gen.Expand("Glue", inner_glue));
  if (outers.empty() || inners.empty()) return Status::OK();
  auto cheapest = [](const std::vector<PlanPtr>& plans) {
    PlanPtr best = plans[0];
    for (const PlanPtr& p : plans) {
      if (p->props.cost < best->props.cost) best = p;
    }
    return best;
  };
  auto join = NewPlan(Lolepop::kMergeJoin);
  join->inputs = {cheapest(outers), cheapest(inners)};
  join->equi_keys = std::move(keys);
  join->predicates = std::move(residual);
  FillJoinCommon(join.get(), ctx);
  auto all_preds = ctx.join_preds;
  auto saved = join->predicates;
  join->predicates = all_preds;
  gen.cost().FinishMergeJoin(join.get());
  join->predicates = std::move(saved);
  gen.CountPlan();
  out->push_back(std::move(join));
  return Status::OK();
}

// -- Glue --------------------------------------------------------------------

Status GlueNoopStar(PlanGenerator& gen, const StarContext& ctx,
                    std::vector<PlanPtr>* out) {
  (void)gen;
  if (ctx.glue_input->props.site == ctx.required_site &&
      OrderSatisfies(ctx.glue_input->props.order, ctx.required_order)) {
    out->push_back(ctx.glue_input);
  }
  return Status::OK();
}

Status GlueShipStar(PlanGenerator& gen, const StarContext& ctx,
                    std::vector<PlanPtr>* out) {
  if (ctx.glue_input->props.site == ctx.required_site) return Status::OK();
  auto ship = NewPlan(Lolepop::kShip);
  ship->inputs = {ctx.glue_input};
  ship->output = ctx.glue_input->output;
  ship->from_site = ctx.glue_input->props.site;
  ship->to_site = ctx.required_site;
  gen.cost().FinishShip(ship.get());
  gen.CountPlan();
  // Recurse for the order requirement on the shipped stream.
  StarContext next = ctx;
  next.glue_input = ship;
  STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> rest,
                             gen.Expand("Glue", next));
  for (PlanPtr& p : rest) out->push_back(std::move(p));
  return Status::OK();
}

Status GlueSortStar(PlanGenerator& gen, const StarContext& ctx,
                    std::vector<PlanPtr>* out) {
  if (ctx.glue_input->props.site != ctx.required_site) return Status::OK();
  if (ctx.required_order.empty() ||
      OrderSatisfies(ctx.glue_input->props.order, ctx.required_order)) {
    return Status::OK();
  }
  auto sort = NewPlan(Lolepop::kSort);
  sort->inputs = {ctx.glue_input};
  sort->output = ctx.glue_input->output;
  sort->sort_keys = ctx.required_order;
  gen.cost().FinishSort(sort.get());
  gen.CountPlan();
  out->push_back(std::move(sort));
  return Status::OK();
}

// -- Distinct ------------------------------------------------------------------

Status DistinctHashStar(PlanGenerator& gen, const StarContext& ctx,
                        std::vector<PlanPtr>* out) {
  auto distinct = NewPlan(Lolepop::kDistinct);
  distinct->inputs = {ctx.glue_input};
  distinct->output = ctx.glue_input->output;
  gen.cost().FinishDistinct(distinct.get());
  gen.CountPlan();
  out->push_back(std::move(distinct));
  return Status::OK();
}

}  // namespace

void RegisterDefaultStars(StarRegistry* registry) {
  (void)registry->Add(Star{"seqscan", "TableAccess", 0, SeqScanStar});
  (void)registry->Add(Star{"indexscan", "TableAccess", 0, IndexScanStar});
  (void)registry->Add(Star{"nljoin", "JoinMethod", 0, NlJoinStar});
  (void)registry->Add(Star{"nljoin_temp", "JoinMethod", 0, NlJoinTempStar});
  (void)registry->Add(Star{"hashjoin", "JoinMethod", 0, HashJoinStar});
  (void)registry->Add(Star{"mergejoin", "JoinMethod", 1, MergeJoinStar});
  (void)registry->Add(Star{"glue_noop", "Glue", 0, GlueNoopStar});
  (void)registry->Add(Star{"glue_ship", "Glue", 0, GlueShipStar});
  (void)registry->Add(Star{"glue_sort", "Glue", 0, GlueSortStar});
  (void)registry->Add(Star{"distinct_hash", "Distinct", 0, DistinctHashStar});
}

}  // namespace starburst::optimizer
