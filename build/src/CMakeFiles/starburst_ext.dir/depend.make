# Empty dependencies file for starburst_ext.
# This may be replaced when dependencies are built.
