#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "engine/database.h"
#include "obs/op_stats.h"
#include "obs/trace.h"

namespace starburst {
namespace {

// ---------------------------------------------------------------------------
// Tracer / Span primitives
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.RecordSpan("a", "cat", 0, 10);
  tracer.RecordInstant("b", "cat", 5);
  {
    obs::Span span(&tracer, "c", "cat");
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, SpanAgainstNullTracerIsSafe) {
  obs::Span span(nullptr, "a", "cat");
  span.AddArg("k", "v");
  span.End();  // no crash, nothing to record
}

TEST(TracerTest, SpansNestAndCloseInOrder) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span outer(&tracer, "outer", "phase");
    {
      obs::Span inner(&tracer, "inner", "phase");
    }
  }
  std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it records first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  // Containment: outer starts no later and ends no earlier than inner.
  EXPECT_LE(events[1].start_us, events[0].start_us);
  EXPECT_GE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
}

TEST(TracerTest, SpansCloseViaRaiiUnderErrorPaths) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  auto throwing = [&tracer]() {
    obs::Span span(&tracer, "doomed", "phase");
    throw std::runtime_error("boom");
  };
  EXPECT_THROW(throwing(), std::runtime_error);
  std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "doomed");
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(TracerTest, EndIsIdempotent) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  obs::Span span(&tracer, "once", "cat");
  span.End();
  span.End();
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(TracerTest, RingOverwritesOldestAndCountsDrops) {
  obs::Tracer tracer(4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.RecordInstant("e" + std::to_string(i), "cat",
                         static_cast<double>(i));
  }
  std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
  EXPECT_EQ(tracer.dropped(), 6u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Chrome trace JSON: a minimal structural parser (objects, arrays,
// strings, numbers) — enough to prove the export is well-formed.
// ---------------------------------------------------------------------------

class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  bool Parse() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool ParseValue() {
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    if (text_.compare(pos_, 4, "true") == 0) { pos_ += 4; return true; }
    if (text_.compare(pos_, 5, "false") == 0) { pos_ += 5; return true; }
    if (text_.compare(pos_, 4, "null") == 0) { pos_ += 4; return true; }
    return false;
  }
  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool ParseString() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(TracerTest, ChromeJsonParsesAndEscapes) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  tracer.RecordSpan("na\"me\nwith\tjunk", "cat\\egory", 1.5, 2.5,
                    "\"sql\":\"SELECT \\\"x\\\"\"");
  tracer.RecordInstant("instant", "cat", 3.0);
  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(MiniJsonParser(json).Parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TracerTest, EmptyTracerStillExportsValidJson) {
  obs::Tracer tracer;
  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(MiniJsonParser(json).Parse()) << json;
}

// ---------------------------------------------------------------------------
// PlanStatsTree
// ---------------------------------------------------------------------------

TEST(PlanStatsTreeTest, SelfTimeSubtractsChildren) {
  obs::PlanStatsTree tree;
  obs::PlanStatsTree::Node* root = tree.AddNode(nullptr, "JOIN", 10, 5);
  obs::PlanStatsTree::Node* child = tree.AddNode(root, "SCAN", 100, 2);
  root->actual.wall_us = 50;
  root->actual.opens = 1;
  child->actual.wall_us = 30;
  child->actual.opens = 1;
  EXPECT_DOUBLE_EQ(obs::PlanStatsTree::SelfUs(*root), 20.0);
  EXPECT_DOUBLE_EQ(obs::PlanStatsTree::SelfUs(*child), 30.0);

  std::vector<const obs::PlanStatsTree::Node*> top = tree.TopBySelfTime(3);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0]->name, "SCAN");
  EXPECT_EQ(top[1]->name, "JOIN");
}

TEST(PlanStatsTreeTest, WrapRootReparents) {
  obs::PlanStatsTree tree;
  obs::PlanStatsTree::Node* old_root = tree.AddNode(nullptr, "SCAN", 1, 1);
  obs::PlanStatsTree::Node* wrapper = tree.WrapRoot("LIMIT 5", 5, 1);
  ASSERT_EQ(tree.roots().size(), 1u);
  EXPECT_EQ(tree.roots()[0], wrapper);
  ASSERT_EQ(wrapper->children.size(), 1u);
  EXPECT_EQ(wrapper->children[0], old_root);
  EXPECT_EQ(old_root->parent, wrapper);
}

// ---------------------------------------------------------------------------
// Engine integration: the paper's Figure 2 query end to end
// ---------------------------------------------------------------------------

class ObservabilityEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must("CREATE TABLE quotations (partno INT, price DOUBLE, order_qty INT)");
    Must("CREATE TABLE inventory ("
         "partno INT PRIMARY KEY, onhand_qty INT, type STRING)");
    Must("INSERT INTO inventory VALUES "
         "(1, 10, 'CPU'), (2, 100, 'CPU'), (3, 5, 'DISK'), "
         "(4, 0, 'CPU'), (5, 50, 'RAM')");
    Must("INSERT INTO quotations VALUES "
         "(1, 99.5, 20), (1, 95.0, 5), (2, 40.0, 200), "
         "(3, 12.0, 10), (6, 7.0, 3)");
  }

  ResultSet Must(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return ResultSet::Message("error");
    return r.TakeValue();
  }

  static std::string Joined(const ResultSet& rs) {
    std::string text;
    for (const Row& r : rs.rows()) {
      text += r[0].string_value();
      text += "\n";
    }
    return text;
  }

  static constexpr const char* kFig2Query =
      "SELECT partno, price, order_qty FROM quotations Q1 "
      "WHERE Q1.partno IN "
      "(SELECT partno FROM inventory Q3 "
      " WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')";

  Database db_;
};

TEST_F(ObservabilityEngineTest, ExplainAnalyzeReportsAllSections) {
  ResultSet rs = Must(std::string("EXPLAIN ANALYZE ") + kFig2Query);
  ASSERT_EQ(rs.column_names().size(), 1u);
  EXPECT_EQ(rs.column_names()[0], "EXPLAIN");
  std::string text = Joined(rs);

  // Rewritten QGM and the Rule 1 / Rule 2 firing log with box ids.
  EXPECT_NE(text.find("== QGM (after rewrite) =="), std::string::npos) << text;
  EXPECT_NE(text.find("== Rewrite rule firings =="), std::string::npos);
  EXPECT_NE(text.find("subquery_to_join"), std::string::npos) << text;
  EXPECT_NE(text.find("select_merge"), std::string::npos) << text;
  EXPECT_NE(text.find("box="), std::string::npos);
  EXPECT_NE(text.find("[id="), std::string::npos);

  // Plan with estimates and actuals side by side.
  EXPECT_NE(text.find("== Plan =="), std::string::npos);
  EXPECT_NE(text.find("est rows="), std::string::npos) << text;
  EXPECT_NE(text.find("actual rows="), std::string::npos) << text;

  // Execution summary with storage counters.
  EXPECT_NE(text.find("== Execution =="), std::string::npos);
  EXPECT_NE(text.find("buffer pool:"), std::string::npos);
  EXPECT_NE(text.find("index node visits:"), std::string::npos);
}

TEST_F(ObservabilityEngineTest, ExplainAnalyzeActualRowsMatchResultSet) {
  ResultSet direct = Must(kFig2Query);
  size_t expected_rows = direct.rows().size();
  ASSERT_GT(expected_rows, 0u);

  Must(std::string("EXPLAIN ANALYZE ") + kFig2Query);
  const QueryMetrics& m = db_.last_metrics();
  ASSERT_NE(m.op_stats, nullptr);
  ASSERT_FALSE(m.op_stats->roots().empty());
  const obs::PlanStatsTree::Node* root = m.op_stats->roots()[0];
  EXPECT_EQ(root->actual.rows_out, expected_rows);
  EXPECT_EQ(root->actual.opens, 1u);
  // Batched execution amortizes the call count: at most one call per
  // row (batch_size = 1) plus the end-of-stream call, at least one
  // batch plus end-of-stream.
  EXPECT_GE(root->actual.next_calls, 2u);
  EXPECT_LE(root->actual.next_calls, expected_rows + 1);

  // The report itself names the same cardinality.
  std::string text = Joined(Must(std::string("EXPLAIN ANALYZE ") + kFig2Query));
  EXPECT_NE(text.find("result rows: " + std::to_string(expected_rows)),
            std::string::npos)
      << text;
}

TEST_F(ObservabilityEngineTest, ExplainVerboseSkipsExecution) {
  ResultSet rs = Must(std::string("EXPLAIN VERBOSE ") + kFig2Query);
  std::string text = Joined(rs);
  EXPECT_NE(text.find("== QGM (after rewrite) =="), std::string::npos);
  EXPECT_NE(text.find("== Plan =="), std::string::npos);
  EXPECT_EQ(text.find("== Execution =="), std::string::npos) << text;
  EXPECT_EQ(text.find("actual rows="), std::string::npos) << text;
  // Nothing executed, so the execute phase never ran.
  EXPECT_EQ(db_.last_metrics().execute_us, 0.0);
}

TEST_F(ObservabilityEngineTest, PlainExplainStillReturnsPlanColumn) {
  ResultSet rs = Must(std::string("EXPLAIN ") + kFig2Query);
  ASSERT_EQ(rs.column_names().size(), 1u);
  EXPECT_EQ(rs.column_names()[0], "plan");
  ASSERT_EQ(rs.rows().size(), 1u);
}

TEST_F(ObservabilityEngineTest, TracerRecordsPhaseSpansAndRuleFirings) {
  db_.tracer().set_enabled(true);
  Must(kFig2Query);
  db_.tracer().set_enabled(false);

  std::vector<obs::TraceEvent> events = db_.tracer().Snapshot();
  auto has = [&events](const std::string& name, obs::TraceEvent::Kind kind) {
    for (const obs::TraceEvent& e : events) {
      if (e.name == name && e.kind == kind) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("statement", obs::TraceEvent::Kind::kSpan));
  EXPECT_TRUE(has("parse", obs::TraceEvent::Kind::kSpan));
  EXPECT_TRUE(has("bind", obs::TraceEvent::Kind::kSpan));
  EXPECT_TRUE(has("rewrite", obs::TraceEvent::Kind::kSpan));
  EXPECT_TRUE(has("optimize", obs::TraceEvent::Kind::kSpan));
  EXPECT_TRUE(has("refine", obs::TraceEvent::Kind::kSpan));
  EXPECT_TRUE(has("execute", obs::TraceEvent::Kind::kSpan));
  EXPECT_TRUE(has("rule subquery_to_join", obs::TraceEvent::Kind::kInstant));
  EXPECT_TRUE(has("rule select_merge", obs::TraceEvent::Kind::kInstant));

  std::string json = db_.tracer().ToChromeJson();
  EXPECT_TRUE(MiniJsonParser(json).Parse()) << json;
  EXPECT_NE(json.find("subquery_to_join"), std::string::npos);
}

TEST_F(ObservabilityEngineTest, DisabledTracerLeavesMetricsAlone) {
  // With the tracer off, queries run and no events accumulate; the
  // QueryMetrics phases stay populated either way. (The <5% overhead
  // claim is measured by bench_trace_overhead, not asserted here where
  // timer noise would make the test flaky.)
  Must(kFig2Query);
  const QueryMetrics& m = db_.last_metrics();
  EXPECT_GT(m.parse_us, 0.0);
  EXPECT_GT(m.execute_us, 0.0);
  EXPECT_EQ(m.op_stats, nullptr);  // not collected unless asked
  EXPECT_TRUE(db_.tracer().Snapshot().empty());
}

TEST_F(ObservabilityEngineTest, SessionOptionCollectsOpStatsPerQuery) {
  db_.options().collect_op_stats = true;
  ResultSet rs = Must(kFig2Query);
  const QueryMetrics& m = db_.last_metrics();
  ASSERT_NE(m.op_stats, nullptr);
  ASSERT_FALSE(m.op_stats->roots().empty());
  EXPECT_EQ(m.op_stats->roots()[0]->actual.rows_out, rs.rows().size());
  std::string rendered = m.op_stats->Render(true);
  EXPECT_NE(rendered.find("actual rows="), std::string::npos) << rendered;
}

TEST_F(ObservabilityEngineTest, BufferPoolAndIndexCountersDelta) {
  // The inventory primary key gives the engine a B-tree to visit.
  Must("SELECT * FROM inventory WHERE partno = 3");
  const QueryMetrics& m = db_.last_metrics();
  EXPECT_GT(m.buffer_pool.logical_reads, 0u);
  // Second run of the same query: counters are per-statement deltas, not
  // cumulative totals.
  Must("SELECT * FROM inventory WHERE partno = 3");
  const QueryMetrics& m2 = db_.last_metrics();
  EXPECT_LE(m2.buffer_pool.logical_reads, m.buffer_pool.logical_reads + 4);
}

TEST_F(ObservabilityEngineTest, ExplainAnalyzeLimitQuery) {
  ResultSet rs =
      Must("EXPLAIN ANALYZE SELECT partno FROM quotations LIMIT 2");
  std::string text = Joined(rs);
  EXPECT_NE(text.find("LIMIT 2"), std::string::npos) << text;
  EXPECT_NE(text.find("result rows: 2"), std::string::npos) << text;
  const QueryMetrics& m = db_.last_metrics();
  ASSERT_NE(m.op_stats, nullptr);
  EXPECT_EQ(m.op_stats->roots()[0]->actual.rows_out, 2u);
}

}  // namespace
}  // namespace starburst
