// E13 — memory-governed spilling: vectorized aggregation and external
// merge sort.
//
// Two claims, two workloads:
//
//   1. Vectorized in-memory aggregation: the batched hash build (probe
//      and insert over whole RowBatches, amortized accounting) should
//      sustain >= 1.5x the rows/s of the exact row-at-a-time protocol
//      (batch_size 1) on a CPU-bound GROUP BY.
//
//   2. Spilling degrades gracefully: an external sort whose input is
//      >10x over budget (stable runs spilled batch-at-a-time, k-way
//      merged back) should finish within 5x of the fully in-memory sort
//      of the same input. The spilled output is also byte-compared to
//      the in-memory one — same tie-breaking, same NULL order — so the
//      throughput claim can never mask a wrong or unstable answer.
//
// Both sections differential-check results before timing anything.

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

constexpr int kAggRows = 200000;   // section 1: CPU-bound GROUP BY
constexpr int kAggGroups = 1000;
constexpr int kSortRows = 60000;   // section 2: sort with string payload
constexpr int kSortBudgetKb = 256; // >10x oversubscribed by the input

std::vector<Row> SortedRows(Database* db, const std::string& sql) {
  Result<std::vector<Row>> r = db->Query(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<Row> rows = r.TakeValue();
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.CompareTotal(b) < 0; });
  return rows;
}

std::vector<Row> MustQuery(Database* db, const std::string& sql) {
  Result<std::vector<Row>> r = db->Query(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return r.TakeValue();
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("spill_throughput", argc, argv);

  // ---- Section 1: vectorized vs row-at-a-time aggregation ----
  Database db;
  MakeIntTable(&db, "t", kAggRows, kAggGroups);
  MustExec(&db, "ANALYZE");
  MustExec(&db, "SET parallelism = 1");

  const std::string agg_query =
      "SELECT v, COUNT(*), SUM(k), MIN(k), MAX(k) FROM t GROUP BY v";

  MustExec(&db, "SET BATCH_SIZE = 1");
  std::vector<Row> agg_reference = SortedRows(&db, agg_query);
  if (agg_reference.size() != static_cast<size_t>(kAggGroups)) {
    std::fprintf(stderr, "FATAL: expected %d groups, got %zu\n", kAggGroups,
                 agg_reference.size());
    return 1;
  }

  std::printf("E13.1: in-memory GROUP BY, %d rows -> %d groups, "
              "parallelism 1\n",
              kAggRows, kAggGroups);
  std::printf("%10s | %10s | %12s | %8s\n", "batch_size", "us", "rows/s",
              "speedup");

  double agg_rps_bs1 = 0;
  double agg_speedup = 0;
  for (int bs : {1, 1024}) {
    MustExec(&db, "SET BATCH_SIZE = " + std::to_string(bs));
    if (SortedRows(&db, agg_query) != agg_reference) {
      std::fprintf(stderr, "FATAL: agg output differs at batch_size %d\n", bs);
      return 1;
    }
    double us = MinUs([&] { MustQuery(&db, agg_query); }, 5);
    double rps = static_cast<double>(kAggRows) / (us / 1e6);
    if (bs == 1) agg_rps_bs1 = rps;
    double speedup = rps / agg_rps_bs1;
    if (bs == 1024) agg_speedup = speedup;
    std::printf("%10d | %10.0f | %12.0f | %7.2fx\n", bs, us, rps, speedup);
    json.Add("group_agg",
             {{"batch_size", static_cast<double>(bs)}, {"parallelism", 1}},
             us / 1e3, rps);
  }

  // ---- Section 2: external merge sort vs in-memory sort ----
  Database sort_db;
  MustExec(&sort_db, "CREATE TABLE s (k INT, payload STRING)");
  {
    std::mt19937 rng(23);
    for (int base = 0; base < kSortRows; base += 500) {
      std::string sql = "INSERT INTO s VALUES ";
      for (int i = base; i < base + 500; ++i) {
        if (i > base) sql += ", ";
        sql += "(" + std::to_string(static_cast<int>(rng() % 997)) +
               ", 'payload-" + std::to_string(i) + "-xxxxxxxxxxxxxxxx')";
      }
      MustExec(&sort_db, sql);
    }
  }
  MustExec(&sort_db, "ANALYZE");
  MustExec(&sort_db, "SET parallelism = 1");

  const std::string sort_query = "SELECT k, payload FROM s ORDER BY k";

  MustExec(&sort_db, "SET SORT_MEMORY = DEFAULT");
  std::vector<Row> sort_reference = MustQuery(&sort_db, sort_query);

  std::printf("\nE13.2: ORDER BY, %d rows, budget %d KB vs unlimited\n",
              kSortRows, kSortBudgetKb);
  std::printf("%10s | %10s | %12s | %8s\n", "budget", "us", "rows/s",
              "slowdown");

  double in_memory_us = 0;
  double spill_ratio = 0;
  for (int budget_kb : {0, kSortBudgetKb}) {  // 0 = unlimited
    MustExec(&sort_db, budget_kb == 0
                           ? "SET SORT_MEMORY = DEFAULT"
                           : "SET SORT_MEMORY = " + std::to_string(budget_kb) +
                                 " KB");
    // Spilled output must be byte-identical to the in-memory stable sort
    // (run-index tie-breaking), not just set-equal.
    if (MustQuery(&sort_db, sort_query) != sort_reference) {
      std::fprintf(stderr, "FATAL: sort output differs at budget %d KB\n",
                   budget_kb);
      return 1;
    }
    double us = MinUs([&] { MustQuery(&sort_db, sort_query); }, 5);
    if (budget_kb == 0) in_memory_us = us;
    double ratio = us / in_memory_us;
    if (budget_kb != 0) spill_ratio = ratio;
    double rps = static_cast<double>(kSortRows) / (us / 1e6);
    std::printf("%10s | %10.0f | %12.0f | %7.2fx\n",
                budget_kb == 0 ? "unlimited"
                               : (std::to_string(budget_kb) + " KB").c_str(),
                us, rps, ratio);
    json.Add("external_sort", {{"budget_kb", static_cast<double>(budget_kb)}},
             us / 1e3, rps);
  }

  std::printf("\nShape check: identical results in both sections; vectorized "
              "agg speedup = %.2fx (target >= 1.5x), spilled sort slowdown = "
              "%.2fx (target <= 5x).\n",
              agg_speedup, spill_ratio);
  json.Flush();
  return (agg_speedup >= 1.5 && spill_ratio <= 5.0) ? 0 : 1;
}
