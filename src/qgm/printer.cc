#include "qgm/printer.h"

#include <sstream>

namespace starburst::qgm {

namespace {

void PrintBoxTo(const Box& box, std::ostringstream& out) {
  out << box.Label();
  if (box.distinct_enforced) out << " [DISTINCT]";
  out << "\n";

  // Head.
  out << "  head: (";
  for (size_t i = 0; i < box.head.size(); ++i) {
    if (i > 0) out << ", ";
    out << box.head[i].name;
    if (box.head[i].expr != nullptr) {
      std::string defining = box.head[i].expr->ToString();
      if (defining != box.head[i].name) out << " := " << defining;
    }
  }
  out << ")\n";

  switch (box.kind) {
    case BoxKind::kBaseTable:
      out << "  stored table";
      if (box.table != nullptr) {
        out << " via storage manager " << box.table->storage_manager;
      }
      out << "\n";
      break;
    case BoxKind::kValues:
      out << "  " << box.rows.size() << " literal row(s)\n";
      break;
    default:
      break;
  }

  for (const auto& q : box.quantifiers) {
    out << "  " << q->DisplayName() << ": " << QuantifierTypeGlyph(q->type);
    if (q->type == QuantifierType::kSetPredicate) {
      out << "<" << q->set_function << ">";
    }
    out << " over " << (q->input != nullptr ? q->input->Label() : "?") << "\n";
  }

  for (size_t i = 0; i < box.group_keys.size(); ++i) {
    out << "  group key: " << box.group_keys[i]->ToString() << "\n";
  }
  for (size_t i = 0; i < box.aggregates.size(); ++i) {
    const AggregateSpec& a = box.aggregates[i];
    out << "  agg#" << i << ": " << a.name << "(";
    if (a.distinct) out << "DISTINCT ";
    out << (a.arg != nullptr ? a.arg->ToString() : "*") << ")\n";
  }
  for (const auto& p : box.predicates) {
    out << "  pred: " << p->ToString() << "\n";
  }
}

}  // namespace

std::string PrintBox(const Box& box) {
  std::ostringstream out;
  PrintBoxTo(box, out);
  return out.str();
}

std::string PrintGraph(const Graph& graph) {
  std::ostringstream out;
  std::vector<Box*> order = graph.BottomUpOrder();
  // Top-down reads like the paper's figures: root box first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    PrintBoxTo(**it, out);
  }
  if (!graph.order_by.empty()) {
    out << "ORDER BY:";
    for (const Graph::OrderKey& k : graph.order_by) {
      out << " " << graph.root()->head[k.head_column].name
          << (k.ascending ? " ASC" : " DESC");
    }
    out << "\n";
  }
  if (graph.limit >= 0) out << "LIMIT " << graph.limit << "\n";
  return out.str();
}

}  // namespace starburst::qgm
