#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/operators.h"
#include "qgm/box.h"

namespace starburst {
namespace {

using exec::CompiledExprPtr;
using exec::ExecContext;
using exec::JoinSpec;
using exec::OperatorPtr;
using optimizer::JoinKind;

Row R(std::initializer_list<Value> values) {
  return Row(std::vector<Value>(values));
}

std::vector<Row> RunOp(exec::Operator* op, ExecContext* ctx) {
  EXPECT_TRUE(op->Open(ctx).ok());
  Result<std::vector<Row>> rows = exec::DrainOperator(op);
  op->Close();
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? rows.TakeValue() : std::vector<Row>{};
}

CompiledExprPtr Slot(int i) {
  auto e = std::make_unique<exec::CompiledExpr>();
  e->kind = qgm::Expr::Kind::kColumnRef;
  e->slot = i;
  return e;
}

CompiledExprPtr Lit(Value v) {
  auto e = std::make_unique<exec::CompiledExpr>();
  e->kind = qgm::Expr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

CompiledExprPtr Cmp(ast::BinaryOp op, CompiledExprPtr l, CompiledExprPtr r) {
  auto e = std::make_unique<exec::CompiledExpr>();
  e->kind = qgm::Expr::Kind::kBinary;
  e->bop = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

class ExecOpTest : public ::testing::Test {
 protected:
  StorageEngine storage_;
  Catalog catalog_;
  ExecContext ctx_{&storage_, &catalog_};
};

// ---------------------------------------------------------------------------
// Scalar evaluation semantics
// ---------------------------------------------------------------------------

TEST_F(ExecOpTest, ThreeValuedLogic) {
  Row row;
  // NULL AND FALSE = FALSE (lazy).
  auto and_expr = Cmp(ast::BinaryOp::kAnd, Lit(Value::Null()),
                      Lit(Value::Bool(false)));
  Result<Value> v = and_expr->Eval(row, &ctx_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Bool(false));
  // NULL OR TRUE = TRUE.
  auto or_expr =
      Cmp(ast::BinaryOp::kOr, Lit(Value::Null()), Lit(Value::Bool(true)));
  EXPECT_EQ(*or_expr->Eval(row, &ctx_), Value::Bool(true));
  // NULL AND TRUE = NULL.
  auto unknown =
      Cmp(ast::BinaryOp::kAnd, Lit(Value::Null()), Lit(Value::Bool(true)));
  EXPECT_TRUE(unknown->Eval(row, &ctx_)->is_null());
  // NULL = NULL is NULL, not TRUE.
  auto eq = Cmp(ast::BinaryOp::kEq, Lit(Value::Null()), Lit(Value::Null()));
  EXPECT_TRUE(eq->Eval(row, &ctx_)->is_null());
}

TEST_F(ExecOpTest, DivisionByZeroIsAnError) {
  Row row;
  auto div = Cmp(ast::BinaryOp::kDiv, Lit(Value::Int(1)), Lit(Value::Int(0)));
  EXPECT_FALSE(div->Eval(row, &ctx_).ok());
}

TEST_F(ExecOpTest, LikeMatcher) {
  EXPECT_TRUE(exec::LikeMatch("hello", "h%o"));
  EXPECT_TRUE(exec::LikeMatch("hello", "_ello"));
  EXPECT_TRUE(exec::LikeMatch("hello", "%"));
  EXPECT_TRUE(exec::LikeMatch("", "%"));
  EXPECT_FALSE(exec::LikeMatch("", "_"));
  EXPECT_FALSE(exec::LikeMatch("hello", "h_o"));
  EXPECT_TRUE(exec::LikeMatch("abcabc", "%abc"));
  EXPECT_TRUE(exec::LikeMatch("a%b", "a%b"));
  EXPECT_FALSE(exec::LikeMatch("xyz", "xy"));
}

// Parameterized sweep over scalar comparison semantics: (op, lhs, rhs,
// expected) covering numerics, strings, and NULL propagation.
struct CmpCase {
  ast::BinaryOp op;
  Value l, r;
  Value expected;  // Bool or Null
};

class ComparisonSweep : public ::testing::TestWithParam<CmpCase> {};

TEST_P(ComparisonSweep, Evaluates) {
  const CmpCase& c = GetParam();
  Result<Value> v = exec::EvalBinaryValues(c.op, c.l, c.r);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ComparisonSweep,
    ::testing::Values(
        CmpCase{ast::BinaryOp::kEq, Value::Int(3), Value::Int(3),
                Value::Bool(true)},
        CmpCase{ast::BinaryOp::kEq, Value::Int(3), Value::Double(3.0),
                Value::Bool(true)},
        CmpCase{ast::BinaryOp::kNe, Value::Int(3), Value::Int(4),
                Value::Bool(true)},
        CmpCase{ast::BinaryOp::kLt, Value::Double(1.5), Value::Int(2),
                Value::Bool(true)},
        CmpCase{ast::BinaryOp::kLe, Value::Int(2), Value::Int(2),
                Value::Bool(true)},
        CmpCase{ast::BinaryOp::kGt, Value::String("b"), Value::String("a"),
                Value::Bool(true)},
        CmpCase{ast::BinaryOp::kGe, Value::String("a"), Value::String("b"),
                Value::Bool(false)},
        CmpCase{ast::BinaryOp::kEq, Value::Null(), Value::Int(1),
                Value::Null()},
        CmpCase{ast::BinaryOp::kNe, Value::Int(1), Value::Null(),
                Value::Null()},
        CmpCase{ast::BinaryOp::kAdd, Value::Int(2), Value::Int(3),
                Value::Int(5)},
        CmpCase{ast::BinaryOp::kAdd, Value::Int(2), Value::Double(0.5),
                Value::Double(2.5)},
        CmpCase{ast::BinaryOp::kSub, Value::Null(), Value::Int(1),
                Value::Null()},
        CmpCase{ast::BinaryOp::kMul, Value::Int(-2), Value::Int(3),
                Value::Int(-6)},
        CmpCase{ast::BinaryOp::kDiv, Value::Int(7), Value::Int(2),
                Value::Int(3)},
        CmpCase{ast::BinaryOp::kDiv, Value::Double(7), Value::Int(2),
                Value::Double(3.5)},
        CmpCase{ast::BinaryOp::kMod, Value::Int(7), Value::Int(3),
                Value::Int(1)},
        CmpCase{ast::BinaryOp::kConcat, Value::String("a"), Value::String("b"),
                Value::String("ab")}));

TEST(EvalBinaryValuesTest, TypeErrorsSurface) {
  EXPECT_FALSE(
      exec::EvalBinaryValues(ast::BinaryOp::kEq, Value::Int(1),
                             Value::String("1")).ok());
  EXPECT_FALSE(
      exec::EvalBinaryValues(ast::BinaryOp::kAdd, Value::String("a"),
                             Value::Int(1)).ok());
  EXPECT_FALSE(
      exec::EvalBinaryValues(ast::BinaryOp::kConcat, Value::Int(1),
                             Value::String("a")).ok());
}

// ---------------------------------------------------------------------------
// Join kinds × methods (§7's separation)
// ---------------------------------------------------------------------------

class JoinKindTest : public ExecOpTest {
 protected:
  OperatorPtr Outer() {
    return exec::MakeValuesOp({R({Value::Int(1)}), R({Value::Int(2)}),
                               R({Value::Int(3)}), R({Value::Null()})});
  }
  OperatorPtr Inner() {
    return exec::MakeValuesOp(
        {R({Value::Int(2)}), R({Value::Int(3)}), R({Value::Int(3)})});
  }
  JoinSpec EqSpec(JoinKind kind) {
    JoinSpec spec;
    spec.kind = kind;
    spec.inner_width = 1;
    spec.predicates.push_back(
        Cmp(ast::BinaryOp::kEq, Slot(0), Slot(1)));  // outer.0 = inner.0
    return spec;
  }
};

TEST_F(JoinKindTest, NlRegular) {
  auto join = exec::MakeNlJoinOp(Outer(), Inner(), EqSpec(JoinKind::kRegular));
  std::vector<Row> rows = RunOp(join.get(), &ctx_);
  EXPECT_EQ(rows.size(), 3u);  // 2, 3, 3
}

TEST_F(JoinKindTest, NlLeftOuter) {
  auto join =
      exec::MakeNlJoinOp(Outer(), Inner(), EqSpec(JoinKind::kLeftOuter));
  std::vector<Row> rows = RunOp(join.get(), &ctx_);
  ASSERT_EQ(rows.size(), 5u);  // 1+NULL, 2, 3, 3, NULL+NULL
  EXPECT_TRUE(rows[0][1].is_null());  // unmatched 1
  EXPECT_TRUE(rows[4][1].is_null());  // NULL outer never matches
}

TEST_F(JoinKindTest, NlExistsAndAnti) {
  auto semi = exec::MakeNlJoinOp(Outer(), Inner(), EqSpec(JoinKind::kExists));
  std::vector<Row> rows = RunOp(semi.get(), &ctx_);
  ASSERT_EQ(rows.size(), 2u);  // 2 and 3, each once
  EXPECT_EQ(rows[0][0], Value::Int(2));

  auto anti = exec::MakeNlJoinOp(Outer(), Inner(), EqSpec(JoinKind::kAnti));
  rows = RunOp(anti.get(), &ctx_);
  // Anti = NOT EXISTS semantics: NULL = x is unknown (no match), so the
  // NULL outer row *does* anti-qualify. (Null-aware NOT IN is kOpAll.)
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_TRUE(rows[1][0].is_null());
}

TEST_F(JoinKindTest, NlScalarKind) {
  // Scalar join against a one-row inner.
  auto inner = exec::MakeValuesOp({R({Value::Int(42)})});
  JoinSpec spec;
  spec.kind = JoinKind::kScalar;
  spec.inner_width = 1;
  auto join = exec::MakeNlJoinOp(Outer(), std::move(inner), std::move(spec));
  std::vector<Row> rows = RunOp(join.get(), &ctx_);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][1], Value::Int(42));

  // More than one inner row: runtime error.
  auto bad_inner =
      exec::MakeValuesOp({R({Value::Int(1)}), R({Value::Int(2)})});
  JoinSpec bad_spec;
  bad_spec.kind = JoinKind::kScalar;
  bad_spec.inner_width = 1;
  auto bad =
      exec::MakeNlJoinOp(Outer(), std::move(bad_inner), std::move(bad_spec));
  ASSERT_TRUE(bad->Open(&ctx_).ok());
  Row out;
  EXPECT_FALSE(bad->Next(&out).ok());
  bad->Close();
}

TEST_F(JoinKindTest, NlOpAllKind) {
  // outer.0 <> ALL(inner): NOT IN semantics.
  JoinSpec spec;
  spec.kind = JoinKind::kOpAll;
  spec.inner_width = 1;
  spec.cmp_op = ast::BinaryOp::kNe;
  spec.quant_operand = Slot(0);
  auto join = exec::MakeNlJoinOp(Outer(), Inner(), std::move(spec));
  std::vector<Row> rows = RunOp(join.get(), &ctx_);
  ASSERT_EQ(rows.size(), 1u);  // only 1; NULL folds to unknown -> reject
  EXPECT_EQ(rows[0][0], Value::Int(1));
}

TEST_F(JoinKindTest, HashJoinKindsAgreeWithNl) {
  for (JoinKind kind : {JoinKind::kRegular, JoinKind::kExists, JoinKind::kAnti,
                        JoinKind::kLeftOuter}) {
    JoinSpec nl_spec = EqSpec(kind);
    auto nl = exec::MakeNlJoinOp(Outer(), Inner(), std::move(nl_spec));
    std::vector<Row> expected = RunOp(nl.get(), &ctx_);

    JoinSpec hash_spec;
    hash_spec.kind = kind;
    hash_spec.inner_width = 1;
    auto hash = exec::MakeHashJoinOp(Outer(), Inner(), {{0, 0}},
                                     std::move(hash_spec));
    std::vector<Row> actual = RunOp(hash.get(), &ctx_);

    std::sort(expected.begin(), expected.end(),
              [](const Row& a, const Row& b) { return a.CompareTotal(b) < 0; });
    std::sort(actual.begin(), actual.end(),
              [](const Row& a, const Row& b) { return a.CompareTotal(b) < 0; });
    EXPECT_EQ(expected, actual) << "kind " << optimizer::JoinKindName(kind);
  }
}

TEST_F(JoinKindTest, MergeJoinKindsAgreeWithNl) {
  for (JoinKind kind :
       {JoinKind::kRegular, JoinKind::kExists, JoinKind::kLeftOuter}) {
    JoinSpec nl_spec = EqSpec(kind);
    auto nl = exec::MakeNlJoinOp(Outer(), Inner(), std::move(nl_spec));
    std::vector<Row> expected = RunOp(nl.get(), &ctx_);

    JoinSpec merge_spec;
    merge_spec.kind = kind;
    merge_spec.inner_width = 1;
    // Sort both sides first (glue would have done this).
    auto sorted_outer = exec::MakeSortOp(Outer(), {{0, true}});
    auto sorted_inner = exec::MakeSortOp(Inner(), {{0, true}});
    auto merge =
        exec::MakeMergeJoinOp(std::move(sorted_outer), std::move(sorted_inner),
                              {{0, 0}}, std::move(merge_spec));
    std::vector<Row> actual = RunOp(merge.get(), &ctx_);

    std::sort(expected.begin(), expected.end(),
              [](const Row& a, const Row& b) { return a.CompareTotal(b) < 0; });
    std::sort(actual.begin(), actual.end(),
              [](const Row& a, const Row& b) { return a.CompareTotal(b) < 0; });
    EXPECT_EQ(expected, actual) << "kind " << optimizer::JoinKindName(kind);
  }
}

TEST_F(JoinKindTest, HashJoinNullKeysThreeValuedSemantics) {
  // NULL join keys on *either* side must follow three-valued logic:
  // NULL = x is unknown, so a NULL inner key matches nothing (invisible
  // to regular/semi matching, cannot block anti), and a NULL outer key
  // probes nothing (dropped by regular/semi, null-padded by left-outer,
  // emitted by anti -- NOT EXISTS semantics).
  auto inner_with_nulls = [] {
    return exec::MakeValuesOp({R({Value::Int(2)}), R({Value::Null()}),
                               R({Value::Int(3)}), R({Value::Null()})});
  };
  auto run = [&](JoinKind kind) {
    JoinSpec spec;
    spec.kind = kind;
    spec.inner_width = 1;
    auto join = exec::MakeHashJoinOp(Outer(), inner_with_nulls(), {{0, 0}},
                                     std::move(spec));
    std::vector<Row> rows = RunOp(join.get(), &ctx_);
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.CompareTotal(b) < 0; });
    return rows;
  };

  std::vector<Row> regular = run(JoinKind::kRegular);
  ASSERT_EQ(regular.size(), 2u);  // (2,2), (3,3); NULL keys never match
  EXPECT_EQ(regular[0], R({Value::Int(2), Value::Int(2)}));
  EXPECT_EQ(regular[1], R({Value::Int(3), Value::Int(3)}));

  std::vector<Row> semi = run(JoinKind::kExists);
  ASSERT_EQ(semi.size(), 2u);
  EXPECT_EQ(semi[0], R({Value::Int(2)}));
  EXPECT_EQ(semi[1], R({Value::Int(3)}));

  std::vector<Row> anti = run(JoinKind::kAnti);
  ASSERT_EQ(anti.size(), 2u);  // 1 and NULL: neither has a match
  EXPECT_TRUE(anti[0][0].is_null());
  EXPECT_EQ(anti[1], R({Value::Int(1)}));

  std::vector<Row> outer = run(JoinKind::kLeftOuter);
  ASSERT_EQ(outer.size(), 4u);
  EXPECT_TRUE(outer[0][0].is_null());  // NULL outer, null-padded
  EXPECT_TRUE(outer[0][1].is_null());
  EXPECT_EQ(outer[1], R({Value::Int(1), Value::Null()}));  // unmatched 1
  EXPECT_EQ(outer[2], R({Value::Int(2), Value::Int(2)}));
  EXPECT_EQ(outer[3], R({Value::Int(3), Value::Int(3)}));

  // And the NL join -- the semantic reference -- agrees kind by kind.
  for (JoinKind kind : {JoinKind::kRegular, JoinKind::kExists, JoinKind::kAnti,
                        JoinKind::kLeftOuter}) {
    auto nl = exec::MakeNlJoinOp(Outer(), inner_with_nulls(), EqSpec(kind));
    std::vector<Row> expected = RunOp(nl.get(), &ctx_);
    std::sort(expected.begin(), expected.end(),
              [](const Row& a, const Row& b) { return a.CompareTotal(b) < 0; });
    EXPECT_EQ(expected, run(kind)) << "kind " << optimizer::JoinKindName(kind);
  }
}

TEST_F(JoinKindTest, HashJoinRejectsQuantifiedCompare) {
  // Quantified compares (x <op> ALL/ANY inner) need per-outer verdict
  // folds that the hash probe cannot provide; the operator must refuse
  // at Open rather than silently compute regular-join semantics.
  JoinSpec spec;
  spec.kind = JoinKind::kOpAll;
  spec.inner_width = 1;
  spec.cmp_op = ast::BinaryOp::kNe;
  spec.quant_operand = Slot(0);
  auto join =
      exec::MakeHashJoinOp(Outer(), Inner(), {{0, 0}}, std::move(spec));
  EXPECT_FALSE(join->Open(&ctx_).ok());
}

TEST_F(JoinKindTest, HashJoinRejectsUnsupportedKinds) {
  for (JoinKind kind : {JoinKind::kScalar, JoinKind::kOpAll,
                        JoinKind::kSetPred}) {
    JoinSpec spec;
    spec.kind = kind;
    spec.inner_width = 1;
    auto join =
        exec::MakeHashJoinOp(Outer(), Inner(), {{0, 0}}, std::move(spec));
    EXPECT_FALSE(join->Open(&ctx_).ok())
        << "kind " << optimizer::JoinKindName(kind);
  }
}

TEST_F(JoinKindTest, MergeJoinRejectsUnsupportedKinds) {
  // kAnti needs the full-inner-scan verdict; quantified compares need
  // the fold. Both must fail loudly at Open.
  JoinSpec anti;
  anti.kind = JoinKind::kAnti;
  anti.inner_width = 1;
  auto merge =
      exec::MakeMergeJoinOp(Outer(), Inner(), {{0, 0}}, std::move(anti));
  EXPECT_FALSE(merge->Open(&ctx_).ok());

  JoinSpec quant;
  quant.kind = JoinKind::kRegular;
  quant.inner_width = 1;
  quant.cmp_op = ast::BinaryOp::kNe;
  quant.quant_operand = Slot(0);
  auto merge2 =
      exec::MakeMergeJoinOp(Outer(), Inner(), {{0, 0}}, std::move(quant));
  EXPECT_FALSE(merge2->Open(&ctx_).ok());
}

// ---------------------------------------------------------------------------
// Correlated-subquery memo cache (SubqueryRuntime)
// ---------------------------------------------------------------------------

TEST_F(ExecOpTest, SubqueryMemoNullCorrelationKeys) {
  // The memo key is the correlation-value row, compared structurally by
  // Row::operator== (NULL == NULL there, unlike SQL). All NULL-correlated
  // outer rows therefore share ONE memo entry. That aliasing is safe --
  // the subquery result is a pure function of the correlation values --
  // but this test pins it: NULL rows must get the NULL-key result (empty
  // under an equality predicate), never a non-NULL row's cached rows.
  static qgm::Quantifier q;  // identity only; never dereferenced
  auto make_plan = [] {
    auto param = std::make_unique<exec::CompiledExpr>();
    param->kind = qgm::Expr::Kind::kColumnRef;
    param->slot = -1;
    param->param_q = &q;
    param->param_col = 0;
    std::vector<CompiledExprPtr> preds;
    preds.push_back(Cmp(ast::BinaryOp::kEq, std::move(param), Slot(0)));
    return exec::MakeFilterOp(
        exec::MakeValuesOp({R({Value::Int(10)}), R({Value::Int(20)})}),
        std::move(preds));
  };
  exec::SubqueryRuntime runtime(
      make_plan(), {{&q, 0, /*outer_slot=*/0}}, exec::SubqueryCacheMode::kMemo);

  auto eval = [&](Value correlation) {
    Result<const std::vector<Row>*> r =
        runtime.Evaluate(R({std::move(correlation)}), &ctx_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? **r : std::vector<Row>{};
  };

  EXPECT_EQ(eval(Value::Int(10)), (std::vector<Row>{R({Value::Int(10)})}));
  EXPECT_TRUE(eval(Value::Null()).empty());  // NULL = x is unknown
  EXPECT_EQ(ctx_.stats().subquery_evaluations, 2u);

  // Replays: both keys must hit the cache and return their own results.
  EXPECT_EQ(eval(Value::Int(10)), (std::vector<Row>{R({Value::Int(10)})}));
  EXPECT_TRUE(eval(Value::Null()).empty());
  EXPECT_TRUE(eval(Value::Null()).empty());
  EXPECT_EQ(ctx_.stats().subquery_evaluations, 2u);  // no re-execution
  EXPECT_EQ(ctx_.stats().subquery_cache_hits, 3u);
}

TEST(SubqueryMemoEndToEnd, NullCorrelationValuesStayDistinct) {
  // End-to-end pin of the same property through the engine: outer rows
  // with NULL correlation values must all see the empty-match result,
  // regardless of how the subquery is cached or decorrelated.
  Database db;
  auto exec_ok = [&](const std::string& sql) {
    Result<ResultSet> r = db.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  exec_ok("CREATE TABLE outer_t (id INT, k INT)");
  exec_ok("CREATE TABLE inner_t (k INT, v INT)");
  exec_ok("INSERT INTO outer_t VALUES "
          "(1, 10), (2, NULL), (3, 10), (4, NULL), (5, 20)");
  exec_ok("INSERT INTO inner_t VALUES (10, 100), (20, 200), (NULL, 999)");
  Result<std::vector<Row>> r = db.Query(
      "SELECT id, (SELECT SUM(v) FROM inner_t WHERE inner_t.k = outer_t.k) "
      "FROM outer_t ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::vector<Row>& rows = *r;
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][1], Value::Int(100));  // k=10
  EXPECT_TRUE(rows[1][1].is_null());       // k=NULL: no inner row matches
  EXPECT_EQ(rows[2][1], Value::Int(100));  // k=10 again (cacheable)
  EXPECT_TRUE(rows[3][1].is_null());       // k=NULL again: must stay NULL
  EXPECT_EQ(rows[4][1], Value::Int(200));  // k=20
}

// ---------------------------------------------------------------------------
// Other operators
// ---------------------------------------------------------------------------

TEST_F(ExecOpTest, SortStability) {
  auto values = exec::MakeValuesOp({R({Value::Int(2), Value::String("b")}),
                                    R({Value::Int(1), Value::String("x")}),
                                    R({Value::Int(2), Value::String("a")})});
  auto sort = exec::MakeSortOp(std::move(values), {{0, true}});
  std::vector<Row> rows = RunOp(sort.get(), &ctx_);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  // Stable: 'b' before 'a' (input order preserved among equal keys).
  EXPECT_EQ(rows[1][1], Value::String("b"));
}

TEST_F(ExecOpTest, SortDescendingWithNullsFirst) {
  auto values = exec::MakeValuesOp(
      {R({Value::Int(1)}), R({Value::Null()}), R({Value::Int(3)})});
  auto sort = exec::MakeSortOp(std::move(values), {{0, false}});
  std::vector<Row> rows = RunOp(sort.get(), &ctx_);
  EXPECT_EQ(rows[0][0], Value::Int(3));
  EXPECT_TRUE(rows[2][0].is_null());  // nulls last on DESC
}

TEST_F(ExecOpTest, TempMaterializesOnce) {
  // A Values op wrapped in TEMP replays without re-opening the input.
  auto temp = exec::MakeTempOp(
      exec::MakeValuesOp({R({Value::Int(1)}), R({Value::Int(2)})}));
  EXPECT_EQ(RunOp(temp.get(), &ctx_).size(), 2u);
  EXPECT_EQ(RunOp(temp.get(), &ctx_).size(), 2u);  // replay
}

TEST_F(ExecOpTest, OrRouteShortCircuits) {
  // Branch 1 accepts even numbers; branch 2 would fail on evaluation
  // (division by zero) but is never reached for them.
  auto values = exec::MakeValuesOp({R({Value::Int(2)}), R({Value::Int(4)})});
  std::vector<std::vector<CompiledExprPtr>> branches;
  std::vector<CompiledExprPtr> b1;
  b1.push_back(Cmp(ast::BinaryOp::kEq,
                   Cmp(ast::BinaryOp::kMod, Slot(0), Lit(Value::Int(2))),
                   Lit(Value::Int(0))));
  branches.push_back(std::move(b1));
  std::vector<CompiledExprPtr> b2;
  b2.push_back(Cmp(ast::BinaryOp::kGt,
                   Cmp(ast::BinaryOp::kDiv, Slot(0), Lit(Value::Int(0))),
                   Lit(Value::Int(0))));
  branches.push_back(std::move(b2));
  auto orop = exec::MakeOrRouteOp(std::move(values), std::move(branches));
  std::vector<Row> rows = RunOp(orop.get(), &ctx_);
  EXPECT_EQ(rows.size(), 2u);  // no division-by-zero error surfaced
}

TEST_F(ExecOpTest, SetOpCountingSemantics) {
  auto l = [] {
    return exec::MakeValuesOp({R({Value::Int(1)}), R({Value::Int(1)}),
                               R({Value::Int(2)}), R({Value::Int(3)})});
  };
  auto r = [] {
    return exec::MakeValuesOp(
        {R({Value::Int(1)}), R({Value::Int(3)}), R({Value::Int(4)})});
  };
  auto run = [&](ast::SetOpKind op, bool all) {
    auto setop = exec::MakeSetOpOp(l(), r(), op, all);
    return RunOp(setop.get(), &ctx_).size();
  };
  EXPECT_EQ(run(ast::SetOpKind::kUnion, false), 4u);      // 1 2 3 4
  EXPECT_EQ(run(ast::SetOpKind::kUnion, true), 7u);       // bag union
  EXPECT_EQ(run(ast::SetOpKind::kIntersect, false), 2u);  // 1 3
  EXPECT_EQ(run(ast::SetOpKind::kIntersect, true), 2u);   // min counts
  EXPECT_EQ(run(ast::SetOpKind::kExcept, false), 1u);     // 2
  EXPECT_EQ(run(ast::SetOpKind::kExcept, true), 2u);      // 1 (2-1) and 2
}

TEST_F(ExecOpTest, LimitStopsEarly) {
  auto values = exec::MakeValuesOp(
      {R({Value::Int(1)}), R({Value::Int(2)}), R({Value::Int(3)})});
  auto limit = exec::MakeLimitOp(std::move(values), 2);
  EXPECT_EQ(RunOp(limit.get(), &ctx_).size(), 2u);
}

// ---------------------------------------------------------------------------
// Subquery runtime: evaluate-on-demand + caching
// ---------------------------------------------------------------------------

TEST_F(ExecOpTest, SubqueryCacheModes) {
  // Correlated-ish subquery: a Values subplan, parameterized by nothing,
  // evaluated per outer row of a filter.
  for (auto mode : {exec::SubqueryCacheMode::kNone,
                    exec::SubqueryCacheMode::kLastValue,
                    exec::SubqueryCacheMode::kMemo}) {
    ExecContext ctx(&storage_, &catalog_);
    auto subplan = exec::MakeValuesOp({R({Value::Int(2)})});
    auto runtime = std::make_shared<exec::SubqueryRuntime>(
        std::move(subplan), std::vector<exec::SubqueryRuntime::ParamSource>{},
        mode);
    Row outer;
    for (int i = 0; i < 5; ++i) {
      Result<const std::vector<Row>*> rows = runtime->Evaluate(outer, &ctx);
      ASSERT_TRUE(rows.ok());
      EXPECT_EQ((*rows.value())[0][0], Value::Int(2));
    }
    if (mode == exec::SubqueryCacheMode::kNone) {
      EXPECT_EQ(ctx.stats().subquery_evaluations, 5u);
    } else {
      EXPECT_EQ(ctx.stats().subquery_evaluations, 1u);
      EXPECT_EQ(ctx.stats().subquery_cache_hits, 4u);
    }
  }
}

// ---------------------------------------------------------------------------
// Recursion driver
// ---------------------------------------------------------------------------

TEST_F(ExecOpTest, ShipCountsRows) {
  auto ship = exec::MakeShipOp(
      exec::MakeValuesOp({R({Value::Int(1)}), R({Value::Int(2)})}), 0);
  EXPECT_EQ(RunOp(ship.get(), &ctx_).size(), 2u);
  EXPECT_EQ(ctx_.stats().shipped_rows, 2u);
}

TEST_F(ExecOpTest, IterRefOutsideRecursionIsAnError) {
  qgm::Graph graph;
  qgm::Box* recursion = graph.NewBox(qgm::BoxKind::kRecursiveUnion);
  auto iter = exec::MakeIterRefOp(recursion);
  EXPECT_FALSE(iter->Open(&ctx_).ok());
}

TEST_F(ExecOpTest, SharedTempBuildsOnceAcrossConsumers) {
  // Two operators with the same shared key: the second Open reads the
  // first's materialization.
  const int kKey = 0;
  auto a = exec::MakeSharedTempOp(
      exec::MakeValuesOp({R({Value::Int(1)})}), &kKey);
  auto b = exec::MakeSharedTempOp(
      exec::MakeValuesOp({R({Value::Int(999)})}), &kKey);  // never built
  EXPECT_EQ(RunOp(a.get(), &ctx_).size(), 1u);
  std::vector<Row> second = RunOp(b.get(), &ctx_);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0][0], Value::Int(1));  // shared copy, not 999
  EXPECT_EQ(ctx_.stats().shared_materializations, 1u);
}

TEST_F(ExecOpTest, DependentNlJoinRebindsParams) {
  // Inner is an empty-layout compiled expression reading a parameter the
  // join binds from each outer row: a lateral-style evaluation.
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE n (k INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO n VALUES (1), (2), (3)").ok());
  // The subquery depends on the outer row's k; converted E->F by Rule 1,
  // the merge is blocked only when dedup is required — force the lateral
  // case with a correlated scalar in FROM-position semantics instead:
  Result<std::vector<Row>> rows = db.Query(
      "SELECT k, (SELECT COUNT(*) FROM n m WHERE m.k <= n.k) FROM n "
      "ORDER BY k");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][1], Value::Int(1));
  EXPECT_EQ((*rows)[2][1], Value::Int(3));
}

TEST_F(ExecOpTest, RecursionTerminatesOnCycles) {
  // Edges forming a cycle 1->2->3->1; transitive closure from 1 must
  // terminate with {1,2,3} reachable.
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE edges (src INT, dst INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO edges VALUES (1,2),(2,3),(3,1)").ok());
  Result<std::vector<Row>> rows = db.Query(
      "WITH RECURSIVE reach(n) AS (SELECT 1 UNION ALL "
      "SELECT e.dst FROM edges e, reach r WHERE e.src = r.n) "
      "SELECT COUNT(*) FROM reach");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Int(3));
  EXPECT_GE(db.last_metrics().exec_stats.recursion_iterations, 3u);
}

}  // namespace
}  // namespace starburst
