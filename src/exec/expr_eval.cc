#include "exec/expr_eval.h"

#include <algorithm>
#include <set>

namespace starburst::exec {

using qgm::Expr;
using qgm::Quantifier;
using qgm::QuantifierType;

// ---------------------------------------------------------------------------
// Value-level operator semantics (SQL three-valued logic)
// ---------------------------------------------------------------------------

namespace {

Value Bool3(bool b) { return Value::Bool(b); }

Result<Value> EvalComparison(ast::BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  STARBURST_ASSIGN_OR_RETURN(int cmp, l.Compare(r));
  switch (op) {
    case ast::BinaryOp::kEq: return Bool3(cmp == 0);
    case ast::BinaryOp::kNe: return Bool3(cmp != 0);
    case ast::BinaryOp::kLt: return Bool3(cmp < 0);
    case ast::BinaryOp::kLe: return Bool3(cmp <= 0);
    case ast::BinaryOp::kGt: return Bool3(cmp > 0);
    default: return Bool3(cmp >= 0);
  }
}

Result<Value> EvalArithmetic(ast::BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (op == ast::BinaryOp::kConcat) {
    if (l.type_id() != TypeId::kString || r.type_id() != TypeId::kString) {
      return Status::TypeError("|| expects strings");
    }
    return Value::String(l.string_value() + r.string_value());
  }
  if (op == ast::BinaryOp::kMod) {
    STARBURST_ASSIGN_OR_RETURN(int64_t a, l.AsInt());
    STARBURST_ASSIGN_OR_RETURN(int64_t b, r.AsInt());
    if (b == 0) return Status::InvalidArgument("modulo by zero");
    return Value::Int(a % b);
  }
  bool integral =
      l.type_id() == TypeId::kInt && r.type_id() == TypeId::kInt;
  if (integral) {
    int64_t a = l.int_value(), b = r.int_value();
    switch (op) {
      case ast::BinaryOp::kAdd: return Value::Int(a + b);
      case ast::BinaryOp::kSub: return Value::Int(a - b);
      case ast::BinaryOp::kMul: return Value::Int(a * b);
      case ast::BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(a / b);
      default: break;
    }
  }
  STARBURST_ASSIGN_OR_RETURN(double a, l.AsDouble());
  STARBURST_ASSIGN_OR_RETURN(double b, r.AsDouble());
  switch (op) {
    case ast::BinaryOp::kAdd: return Value::Double(a + b);
    case ast::BinaryOp::kSub: return Value::Double(a - b);
    case ast::BinaryOp::kMul: return Value::Double(a * b);
    case ast::BinaryOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    default:
      return Status::Internal("unexpected arithmetic operator");
  }
}

}  // namespace

Result<Value> EvalBinaryValues(ast::BinaryOp op, const Value& l,
                               const Value& r) {
  switch (op) {
    case ast::BinaryOp::kEq:
    case ast::BinaryOp::kNe:
    case ast::BinaryOp::kLt:
    case ast::BinaryOp::kLe:
    case ast::BinaryOp::kGt:
    case ast::BinaryOp::kGe:
      return EvalComparison(op, l, r);
    case ast::BinaryOp::kAnd:
    case ast::BinaryOp::kOr:
      return Status::Internal("AND/OR require lazy evaluation");
    default:
      return EvalArithmetic(op, l, r);
  }
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

// ---------------------------------------------------------------------------
// SubqueryRuntime
// ---------------------------------------------------------------------------

Result<const std::vector<Row>*> SubqueryRuntime::Evaluate(const Row& outer_row,
                                                          ExecContext* ctx) {
  // Cached plans re-execute the same operator tree under a fresh
  // ExecContext; memoized results from an earlier run may be stale (DML
  // in between, different query parameters), so caches are scoped to one
  // execution epoch.
  if (run_id_ != ctx->run_id()) {
    ResetCache();
    run_id_ = ctx->run_id();
  }
  // Gather the correlation values for this outer row.
  frame_.Clear();
  std::vector<Value> key_values;
  key_values.reserve(params_.size());
  for (const ParamSource& src : params_) {
    Value v;
    if (src.outer_slot >= 0) {
      v = outer_row[static_cast<size_t>(src.outer_slot)];
    } else {
      STARBURST_ASSIGN_OR_RETURN(v, ctx->LookupParam(src.q, src.column));
    }
    frame_.Set(src.q, src.column, v);
    key_values.push_back(std::move(v));
  }
  Row key(std::move(key_values));

  if (mode_ == SubqueryCacheMode::kMemo) {
    auto hit = memo_.find(key);
    if (hit != memo_.end()) {
      ++ctx->stats().subquery_cache_hits;
      return &hit->second;
    }
  } else if (mode_ == SubqueryCacheMode::kLastValue) {
    if (has_last_ && last_key_ == key) {
      ++ctx->stats().subquery_cache_hits;
      return &last_result_;
    }
  }

  ++ctx->stats().subquery_evaluations;
  ctx->PushParams(&frame_);
  Status open = plan_->Open(ctx);
  if (!open.ok()) {
    ctx->PopParams();
    return open;
  }
  // Dependent evaluation re-runs per outer row, so the drain's staging
  // batch is a member reused across calls (small: subquery results are
  // typically tiny, and batch_size = 1 keeps this exactly row-at-a-time).
  if (scratch_.capacity() == 0) {
    scratch_.Reset(std::min<size_t>(ctx->batch_size(), size_t{64}));
  }
  std::vector<Row> drained;
  Status drain = DrainOperatorInto(plan_.get(), &scratch_, &drained);
  plan_->Close();
  ctx->PopParams();
  if (!drain.ok()) return drain;

  if (mode_ == SubqueryCacheMode::kMemo) {
    if (memo_.size() > 65536) memo_.clear();  // bound memory
    auto [it, inserted] = memo_.emplace(std::move(key), std::move(drained));
    (void)inserted;
    return &it->second;
  }
  last_key_ = std::move(key);
  last_result_ = std::move(drained);
  has_last_ = true;
  return &last_result_;
}

void SubqueryRuntime::ResetCache() {
  memo_.clear();
  has_last_ = false;
  last_result_.clear();
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

Result<Value> CompiledExpr::Eval(const Row& row, ExecContext* ctx) const {
  switch (kind) {
    case Kind::kLiteral:
      return literal;

    case Kind::kColumnRef: {
      if (subquery != nullptr) {
        // A correlated scalar subquery: at most one row expected.
        STARBURST_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                                   subquery->Evaluate(row, ctx));
        if (rows->empty()) return Value::Null();
        if (rows->size() > 1) {
          return Status::InvalidArgument(
              "scalar subquery returned more than one row");
        }
        return (*rows)[0][subquery_column];
      }
      if (slot >= 0) return row[static_cast<size_t>(slot)];
      if (param_folded_) return folded_param_;
      return ctx->LookupParam(param_q, param_col);
    }

    case Kind::kBinary: {
      if (bop == ast::BinaryOp::kAnd || bop == ast::BinaryOp::kOr) {
        // Three-valued lazy AND/OR.
        STARBURST_ASSIGN_OR_RETURN(Value l, children[0]->Eval(row, ctx));
        bool is_and = bop == ast::BinaryOp::kAnd;
        if (!l.is_null() && l.bool_value() != is_and) {
          return l;  // FALSE AND _, TRUE OR _
        }
        STARBURST_ASSIGN_OR_RETURN(Value r, children[1]->Eval(row, ctx));
        if (!r.is_null() && r.bool_value() != is_and) return r;
        if (l.is_null() || r.is_null()) return Value::Null();
        return Bool3(is_and);
      }
      STARBURST_ASSIGN_OR_RETURN(Value l, children[0]->Eval(row, ctx));
      STARBURST_ASSIGN_OR_RETURN(Value r, children[1]->Eval(row, ctx));
      return EvalBinaryValues(bop, l, r);
    }

    case Kind::kUnary: {
      STARBURST_ASSIGN_OR_RETURN(Value v, children[0]->Eval(row, ctx));
      if (v.is_null()) return Value::Null();
      if (uop == ast::UnaryOp::kNot) {
        if (v.type_id() != TypeId::kBool) {
          return Status::TypeError("NOT expects a boolean");
        }
        return Bool3(!v.bool_value());
      }
      if (v.type_id() == TypeId::kInt) return Value::Int(-v.int_value());
      STARBURST_ASSIGN_OR_RETURN(double d, v.AsDouble());
      return Value::Double(-d);
    }

    case Kind::kScalarFunc: {
      std::vector<Value> args;
      args.reserve(children.size());
      for (const auto& c : children) {
        STARBURST_ASSIGN_OR_RETURN(Value v, c->Eval(row, ctx));
        args.push_back(std::move(v));
      }
      return func->eval(args);
    }

    case Kind::kAggRef:
      return Status::Internal("aggregate reference outside GROUP operator");

    case Kind::kCase: {
      size_t pairs = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        STARBURST_ASSIGN_OR_RETURN(Value cond, children[2 * i]->Eval(row, ctx));
        if (!cond.is_null() && cond.bool_value()) {
          return children[2 * i + 1]->Eval(row, ctx);
        }
      }
      if (has_else) return children.back()->Eval(row, ctx);
      return Value::Null();
    }

    case Kind::kIsNull: {
      STARBURST_ASSIGN_OR_RETURN(Value v, children[0]->Eval(row, ctx));
      return Bool3(negated ? !v.is_null() : v.is_null());
    }

    case Kind::kLike: {
      STARBURST_ASSIGN_OR_RETURN(Value text, children[0]->Eval(row, ctx));
      STARBURST_ASSIGN_OR_RETURN(Value pattern, children[1]->Eval(row, ctx));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      bool m = LikeMatch(text.string_value(), pattern.string_value());
      return Bool3(negated ? !m : m);
    }

    case Kind::kInList: {
      STARBURST_ASSIGN_OR_RETURN(Value v, children[0]->Eval(row, ctx));
      if (v.is_null()) return Value::Null();
      bool unknown = false;
      for (size_t i = 1; i < children.size(); ++i) {
        STARBURST_ASSIGN_OR_RETURN(Value item, children[i]->Eval(row, ctx));
        if (item.is_null()) {
          unknown = true;
          continue;
        }
        STARBURST_ASSIGN_OR_RETURN(int cmp, v.Compare(item));
        if (cmp == 0) return Bool3(!negated);
      }
      if (unknown) return Value::Null();
      return Bool3(negated);
    }

    case Kind::kExistsTest: {
      STARBURST_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                                 subquery->Evaluate(row, ctx));
      bool exists = !rows->empty();
      return Bool3(negated ? !exists : exists);
    }

    case Kind::kQuantCompare: {
      STARBURST_ASSIGN_OR_RETURN(Value operand, children[0]->Eval(row, ctx));
      STARBURST_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                                 subquery->Evaluate(row, ctx));
      switch (quant_type) {
        case QuantifierType::kExists: {  // ANY / IN
          bool unknown = false;
          for (const Row& r : *rows) {
            STARBURST_ASSIGN_OR_RETURN(Value cmp,
                                       EvalComparison(bop, operand, r[0]));
            if (cmp.is_null()) {
              unknown = true;
            } else if (cmp.bool_value()) {
              return Bool3(true);
            }
          }
          if (unknown) return Value::Null();
          return Bool3(false);
        }
        case QuantifierType::kAll:
        case QuantifierType::kAntiExists: {  // op ALL (NOT IN = <> ALL)
          bool unknown = false;
          for (const Row& r : *rows) {
            STARBURST_ASSIGN_OR_RETURN(Value cmp,
                                       EvalComparison(bop, operand, r[0]));
            if (cmp.is_null()) {
              unknown = true;
            } else if (!cmp.bool_value()) {
              return Bool3(false);
            }
          }
          if (unknown) return Value::Null();
          return Bool3(true);
        }
        case QuantifierType::kSetPredicate: {
          // DBC set predicates fold element-predicate truth (UNKNOWN is
          // folded to false) through the registered state machine.
          std::unique_ptr<SetPredicateState> state = set_pred->make_state();
          for (const Row& r : *rows) {
            STARBURST_ASSIGN_OR_RETURN(Value cmp,
                                       EvalComparison(bop, operand, r[0]));
            state->Observe(!cmp.is_null() && cmp.bool_value());
            if (state->Decided()) break;
          }
          return Bool3(state->Verdict());
        }
        default:
          return Status::Internal("bad quantifier type in comparison");
      }
    }
  }
  return Status::Internal("unknown compiled expression kind");
}

Result<bool> CompiledExpr::EvalPredicate(const Row& row,
                                         ExecContext* ctx) const {
  STARBURST_ASSIGN_OR_RETURN(Value v, Eval(row, ctx));
  if (v.is_null()) return false;
  if (v.type_id() != TypeId::kBool) {
    return Status::TypeError("predicate did not evaluate to a boolean");
  }
  return v.bool_value();
}

Status CompiledExpr::FoldParams(ExecContext* ctx) const {
  if (kind == Kind::kColumnRef && subquery == nullptr && slot < 0) {
    // Tolerant: an unbound parameter stays unfolded so lazily-skipped
    // branches (short-circuit AND, untaken CASE arms) behave exactly as
    // in the row-at-a-time path.
    Result<Value> v = ctx->LookupParam(param_q, param_col);
    if (v.ok()) {
      folded_param_ = v.TakeValue();
      param_folded_ = true;
    }
    return Status::OK();
  }
  // Subquery subplans resolve their own parameters per evaluation; only
  // this tree's direct children are folded.
  for (const auto& c : children) {
    Status st = c->FoldParams(ctx);
    if (!st.ok()) {
      UnfoldParams();
      return st;
    }
  }
  return Status::OK();
}

void CompiledExpr::UnfoldParams() const {
  param_folded_ = false;
  folded_param_ = Value();
  for (const auto& c : children) c->UnfoldParams();
}

bool CompiledExpr::AsSlotConstCompare(int* slot_out, ast::BinaryOp* op_out,
                                      const Value** constant) const {
  if (kind != Kind::kBinary) return false;
  switch (bop) {
    case ast::BinaryOp::kEq:
    case ast::BinaryOp::kNe:
    case ast::BinaryOp::kLt:
    case ast::BinaryOp::kLe:
    case ast::BinaryOp::kGt:
    case ast::BinaryOp::kGe:
      break;
    default:
      return false;
  }
  auto is_slot = [](const CompiledExpr& e) {
    return e.kind == Kind::kColumnRef && e.subquery == nullptr && e.slot >= 0;
  };
  auto as_const = [](const CompiledExpr& e) -> const Value* {
    if (e.kind == Kind::kLiteral) return &e.literal;
    if (e.kind == Kind::kColumnRef && e.subquery == nullptr && e.slot < 0 &&
        e.param_folded_) {
      return &e.folded_param_;
    }
    return nullptr;
  };
  const CompiledExpr& l = *children[0];
  const CompiledExpr& r = *children[1];
  if (is_slot(l)) {
    const Value* c = as_const(r);
    if (c == nullptr) return false;
    *slot_out = l.slot;
    *op_out = bop;
    *constant = c;
    return true;
  }
  if (is_slot(r)) {
    const Value* c = as_const(l);
    if (c == nullptr) return false;
    *slot_out = r.slot;
    // const op slot == slot mirrored(op) const
    switch (bop) {
      case ast::BinaryOp::kLt: *op_out = ast::BinaryOp::kGt; break;
      case ast::BinaryOp::kLe: *op_out = ast::BinaryOp::kGe; break;
      case ast::BinaryOp::kGt: *op_out = ast::BinaryOp::kLt; break;
      case ast::BinaryOp::kGe: *op_out = ast::BinaryOp::kLe; break;
      default: *op_out = bop; break;  // = and <> are symmetric
    }
    *constant = c;
    return true;
  }
  return false;
}

Result<bool> EvalSlotConstCompare(const Row& row, int slot, ast::BinaryOp op,
                                  const Value& constant) {
  const Value& v = row[static_cast<size_t>(slot)];
  if (v.is_null() || constant.is_null()) return false;  // UNKNOWN rejects
  STARBURST_ASSIGN_OR_RETURN(int cmp, v.Compare(constant));
  switch (op) {
    case ast::BinaryOp::kEq: return cmp == 0;
    case ast::BinaryOp::kNe: return cmp != 0;
    case ast::BinaryOp::kLt: return cmp < 0;
    case ast::BinaryOp::kLe: return cmp <= 0;
    case ast::BinaryOp::kGt: return cmp > 0;
    default: return cmp >= 0;
  }
}

Status FilterBatch(const std::vector<CompiledExprPtr>& predicates,
                   RowBatch* batch, ExecContext* ctx) {
  if (predicates.empty() || batch->empty()) return Status::OK();
  ScopedParamFold fold;
  for (const auto& p : predicates) {
    STARBURST_RETURN_IF_ERROR(fold.Add(p.get(), ctx));
  }
  std::vector<PreparedPredicate> prepared;
  prepared.reserve(predicates.size());
  for (const auto& p : predicates) {
    prepared.push_back(PreparedPredicate::For(p.get()));
  }
  std::vector<uint32_t> keep;
  size_t n = batch->size();
  keep.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Row& r = batch->row(i);
    bool pass = true;
    for (const PreparedPredicate& p : prepared) {
      STARBURST_ASSIGN_OR_RETURN(bool ok, p.Test(r, ctx));
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (pass) keep.push_back(static_cast<uint32_t>(batch->physical_index(i)));
  }
  batch->SetSelection(std::move(keep));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

std::vector<std::pair<const Quantifier*, size_t>> FreeParamsOf(
    const qgm::Box* sub) {
  std::set<const qgm::Box*> subtree;
  std::vector<const qgm::Box*> stack = {sub};
  while (!stack.empty()) {
    const qgm::Box* b = stack.back();
    stack.pop_back();
    if (b == nullptr || !subtree.insert(b).second) continue;
    for (const auto& q : b->quantifiers) stack.push_back(q->input);
  }
  std::set<std::pair<const Quantifier*, size_t>> free;
  for (const qgm::Box* b : subtree) {
    auto scan = [&](const Expr* e) {
      if (e == nullptr) return;
      std::vector<std::pair<Quantifier*, size_t>> refs;
      e->CollectColumnRefs(&refs);
      for (const auto& [q, col] : refs) {
        if (subtree.count(q->owner) == 0) free.insert({q, col});
      }
    };
    for (const auto& p : b->predicates) scan(p.get());
    for (const auto& h : b->head) scan(h.expr.get());
    for (const auto& g : b->group_keys) scan(g.get());
    for (const auto& a : b->aggregates) scan(a.arg.get());
  }
  return std::vector<std::pair<const Quantifier*, size_t>>(free.begin(),
                                                           free.end());
}

namespace {

int FindLayoutSlot(const std::vector<optimizer::ColumnBinding>& layout,
                   const Quantifier* q, size_t column) {
  for (size_t i = 0; i < layout.size(); ++i) {
    if (layout[i].quantifier == q && layout[i].column == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Result<std::shared_ptr<SubqueryRuntime>> BuildSubquery(const qgm::Box* sub,
                                                       const CompileEnv& env) {
  if (!env.build_box_operator) {
    return Status::Internal("no subquery builder in this compile context");
  }
  STARBURST_ASSIGN_OR_RETURN(OperatorPtr plan, env.build_box_operator(sub));
  std::vector<SubqueryRuntime::ParamSource> params;
  for (const auto& [q, col] : FreeParamsOf(sub)) {
    SubqueryRuntime::ParamSource src;
    src.q = q;
    src.column = col;
    src.outer_slot =
        env.layout != nullptr ? FindLayoutSlot(*env.layout, q, col) : -1;
    if (src.outer_slot < 0 && env.on_param) env.on_param(q, col);
    params.push_back(src);
  }
  return std::make_shared<SubqueryRuntime>(std::move(plan), std::move(params),
                                           env.cache_mode);
}

}  // namespace

const Quantifier* QueryParamQuantifier() {
  static const Quantifier sentinel;
  return &sentinel;
}

Result<CompiledExprPtr> CompileExpr(const Expr& e, const CompileEnv& env) {
  auto out = std::make_unique<CompiledExpr>();
  out->kind = e.kind;
  out->literal = e.literal;
  out->bop = e.bop;
  out->uop = e.uop;
  out->func = e.func;
  out->negated = e.negated;
  out->has_else = e.has_else;

  switch (e.kind) {
    case Expr::Kind::kColumnRef: {
      int slot = env.layout != nullptr
                     ? FindLayoutSlot(*env.layout, e.quantifier, e.column)
                     : -1;
      if (slot >= 0) {
        out->slot = slot;
        return CompiledExprPtr(std::move(out));
      }
      if (e.quantifier != nullptr &&
          e.quantifier->type == QuantifierType::kScalar) {
        // Un-joined (correlated) scalar subquery: fetch through a subplan.
        STARBURST_ASSIGN_OR_RETURN(out->subquery,
                                   BuildSubquery(e.quantifier->input, env));
        out->subquery_column = e.column;
        return CompiledExprPtr(std::move(out));
      }
      out->param_q = e.quantifier;
      out->param_col = e.column;
      if (env.on_param) env.on_param(e.quantifier, e.column);
      return CompiledExprPtr(std::move(out));
    }
    case Expr::Kind::kParam: {
      // Query-level `?` parameter: a param-frame lookup under the
      // sentinel quantifier. Deliberately NOT reported through on_param —
      // the frame is pushed once at the plan root, not per outer row.
      out->kind = Expr::Kind::kColumnRef;
      out->param_q = QueryParamQuantifier();
      out->param_col = e.param_index;
      return CompiledExprPtr(std::move(out));
    }
    case Expr::Kind::kExistsTest: {
      STARBURST_ASSIGN_OR_RETURN(out->subquery,
                                 BuildSubquery(e.quantifier->input, env));
      return CompiledExprPtr(std::move(out));
    }
    case Expr::Kind::kQuantCompare: {
      STARBURST_ASSIGN_OR_RETURN(out->subquery,
                                 BuildSubquery(e.quantifier->input, env));
      out->quant_type = e.quantifier->type;
      if (e.quantifier->type == QuantifierType::kSetPredicate) {
        if (env.catalog == nullptr) {
          return Status::Internal("set predicate needs a catalog");
        }
        out->set_pred =
            env.catalog->functions().FindSetPredicate(e.quantifier->set_function);
        if (out->set_pred == nullptr) {
          return Status::Internal("set predicate '" +
                                  e.quantifier->set_function +
                                  "' vanished from the registry");
        }
      }
      STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr operand,
                                 CompileExpr(*e.children[0], env));
      out->children.push_back(std::move(operand));
      return CompiledExprPtr(std::move(out));
    }
    default:
      break;
  }

  for (const auto& c : e.children) {
    STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr child, CompileExpr(*c, env));
    out->children.push_back(std::move(child));
  }
  return CompiledExprPtr(std::move(out));
}

}  // namespace starburst::exec
