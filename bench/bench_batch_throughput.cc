// E12 — batch-at-a-time execution: vectorized NextBatch vs row-at-a-time.
//
// Two claims, two workloads:
//
//   1. CPU-bound filter+project scan at parallelism 1: batching removes
//      the per-row virtual-call ladder, per-call stats bookkeeping, and
//      per-row correlation-param lookups, so rows/s at batch_size 1024
//      should be >= 2x rows/s at batch_size 1 (which pins the exact
//      row-at-a-time protocol).
//
//   2. Composition with morsel parallelism: batching must not serialize
//      the gather queue. On a latency-bound scan (sleeping UDF predicate,
//      the E11 device — machine-independent and meaningful on single-core
//      hosts) batched execution at 4 workers should be >= 3x batched
//      execution at 1 worker.
//
// Both sections also differential-check row sets against the batch_size=1
// serial reference, so a throughput win can never mask a wrong answer.

#include <thread>

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

constexpr int kScanRows = 150000;   // CPU-bound section
constexpr int kSlowRows = 2000;    // latency-bound section
constexpr int kSleepUs = 100;      // per-row predicate latency (section 2)

void RegisterSlowPass(Database* db) {
  Status s = db->catalog().functions().RegisterScalar(ScalarFunctionDef{
      "SLOW_PASS", 1,
      [](const std::vector<DataType>& args) -> Result<DataType> {
        if (!args[0].is_numeric() && args[0].id != TypeId::kNull) {
          return Status::TypeError("SLOW_PASS expects a number");
        }
        return DataType::Int();
      },
      [](const std::vector<Value>& args) -> Result<Value> {
        std::this_thread::sleep_for(std::chrono::microseconds(kSleepUs));
        return args[0];
      }});
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

std::vector<Row> SortedRows(Database* db, const std::string& sql) {
  Result<std::vector<Row>> r = db->Query(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<Row> rows = r.TakeValue();
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.CompareTotal(b) < 0; });
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("batch_throughput", argc, argv);

  // ---- Section 1: CPU-bound filter+project scan, parallelism 1 ----
  Database db;
  MustExec(&db, "CREATE TABLE t (k INT, v INT)");
  {
    std::mt19937 rng(11);
    for (int base = 0; base < kScanRows; base += 500) {
      std::string sql = "INSERT INTO t VALUES ";
      int hi = std::min(base + 500, kScanRows);
      for (int i = base; i < hi; ++i) {
        if (i > base) sql += ", ";
        sql += "(" + std::to_string(i) + ", " +
               std::to_string(static_cast<int>(rng() % 1000)) + ")";
      }
      MustExec(&db, sql);
    }
  }
  MustExec(&db, "ANALYZE");
  MustExec(&db, "SET parallelism = 1");

  const std::string scan_query = "SELECT k, v FROM t WHERE v < 500";

  MustExec(&db, "SET BATCH_SIZE = 1");
  std::vector<Row> reference = SortedRows(&db, scan_query);
  size_t result_rows = reference.size();

  std::printf("E12.1: filter+project scan, %d rows, parallelism 1\n",
              kScanRows);
  std::printf("%10s | %10s | %12s | %8s\n", "batch_size", "us", "rows/s",
              "speedup");

  double rows_per_sec_bs1 = 0;
  double rows_per_sec_batched = 0;
  for (int bs : {1, 64, 1024}) {
    MustExec(&db, "SET BATCH_SIZE = " + std::to_string(bs));
    // Differential check outside the timed region: the sort + 54k-row
    // compare are harness costs, not engine costs.
    if (SortedRows(&db, scan_query) != reference) {
      std::fprintf(stderr, "FATAL: batched output differs at batch_size %d\n",
                   bs);
      return 1;
    }
    // Time the engine's production of the result only: stop the clock
    // before the 75k-row result vector is torn down (a caller cost both
    // protocols pay identically). Min over reps — on a contended machine
    // interference only ever adds time.
    size_t got_rows = 0;
    double us = 0;
    for (int rep = 0; rep < 7; ++rep) {
      Timer t;
      Result<std::vector<Row>> r = db.Query(scan_query);
      double rep_us = t.ElapsedUs();
      if (!r.ok()) {
        std::fprintf(stderr, "FATAL: %s\n", r.status().ToString().c_str());
        return 1;
      }
      got_rows = (*r).size();
      if (rep == 0 || rep_us < us) us = rep_us;
    }
    if (got_rows != result_rows) {
      std::fprintf(stderr, "FATAL: row count drifted at batch_size %d\n", bs);
      return 1;
    }
    double rps = static_cast<double>(kScanRows) / (us / 1e6);
    if (bs == 1) rows_per_sec_bs1 = rps;
    if (bs == 1024) rows_per_sec_batched = rps;
    std::printf("%10d | %10.0f | %12.0f | %7.2fx\n", bs, us, rps,
                rps / rows_per_sec_bs1);
    json.Add("filter_project_scan",
             {{"batch_size", static_cast<double>(bs)}, {"parallelism", 1}},
             us / 1e3, rps);
  }
  double batch_speedup = rows_per_sec_batched / rows_per_sec_bs1;

  // ---- Section 2: batched pipelines under morsel parallelism ----
  Database slow_db;
  RegisterSlowPass(&slow_db);
  // Pad rows so the table spans enough pages for the morsel dispenser
  // (grain: 4 pages) to feed 4 workers.
  MustExec(&slow_db, "CREATE TABLE s (id INT, grp INT, pad STRING)");
  std::string pad(100, 'x');
  for (int base = 0; base < kSlowRows; base += 500) {
    std::string sql = "INSERT INTO s VALUES ";
    for (int i = base; i < base + 500; ++i) {
      if (i > base) sql += ", ";
      sql += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ", '" +
             pad + "')";
    }
    MustExec(&slow_db, sql);
  }
  MustExec(&slow_db, "ANALYZE");
  MustExec(&slow_db, "SET parallel_min_rows = 0");
  MustExec(&slow_db, "SET BATCH_SIZE = 1024");

  const std::string slow_query =
      "SELECT id, grp FROM s WHERE SLOW_PASS(id) >= 0";

  MustExec(&slow_db, "SET parallelism = 1");
  MustExec(&slow_db, "SET BATCH_SIZE = 1");
  std::vector<Row> slow_reference = SortedRows(&slow_db, slow_query);
  MustExec(&slow_db, "SET BATCH_SIZE = 1024");

  std::printf("\nE12.2: batched scan under morsel parallelism, %d rows x "
              "%dus predicate, batch_size 1024\n",
              kSlowRows, kSleepUs);
  std::printf("%7s | %10s | %12s | %8s\n", "workers", "us", "rows/s",
              "speedup");

  double serial_us = 0;
  double parallel_speedup = 0;
  for (int workers : {1, 4}) {
    MustExec(&slow_db, "SET parallelism = " + std::to_string(workers));
    bool identical = true;
    double us = MedianUs([&] {
      std::vector<Row> rows = SortedRows(&slow_db, slow_query);
      identical = identical && rows == slow_reference;
    });
    if (!identical) {
      std::fprintf(stderr, "FATAL: parallel batched output differs at %d "
                           "workers\n",
                   workers);
      return 1;
    }
    if (workers == 1) serial_us = us;
    double speedup = serial_us / us;
    if (workers == 4) parallel_speedup = speedup;
    double rps = static_cast<double>(kSlowRows) / (us / 1e6);
    std::printf("%7d | %10.0f | %12.0f | %7.2fx\n", workers, us, rps, speedup);
    json.Add("parallel_batched_scan",
             {{"batch_size", 1024}, {"parallelism", static_cast<double>(workers)}},
             us / 1e3, rps);
  }

  std::printf("\nShape check: results identical to the row-at-a-time "
              "reference in both sections; batched speedup = %.2fx "
              "(target >= 2x), parallel composition = %.2fx (target >= 3x).\n",
              batch_speedup, parallel_speedup);
  json.Flush();
  return (batch_speedup >= 2.0 && parallel_speedup >= 3.0) ? 0 : 1;
}
