#include <unordered_set>

#include "exec/operators.h"

namespace starburst::exec {

namespace {

/// Fixpoint driver for recursive table expressions (§2): working :=
/// dedup(base); repeat { delta := step(visible) \ working; working ∪=
/// delta } until delta = ∅. Linear recursion (one iteration reference)
/// runs semi-naive — the step sees only the previous delta; otherwise the
/// step sees the full working table (naive, but still terminating thanks
/// to set semantics).
class RecurseOp : public Operator {
 public:
  RecurseOp(OperatorPtr base, OperatorPtr step, const qgm::Box* recursion,
            size_t iterref_count, bool semi_naive)
      : base_(std::move(base)), step_(std::move(step)), recursion_(recursion),
        semi_naive_(semi_naive && iterref_count <= 1) {}

  Status OpenImpl(ExecContext* ctx) override {
    working_.clear();
    seen_.clear();
    pos_ = 0;

    // One staging batch and one produced-rows buffer serve every fixpoint
    // iteration — a deep recursion re-drains the step hundreds of times
    // and must not rebuild its batch (or regrow a vector) per round.
    RowBatch scratch(ctx->batch_size());
    std::vector<Row> produced;

    STARBURST_RETURN_IF_ERROR(base_->Open(ctx));
    Status drained = DrainOperatorInto(base_.get(), &scratch, &produced);
    base_->Close();
    STARBURST_RETURN_IF_ERROR(drained);
    std::vector<Row> delta;
    for (Row& r : produced) {
      if (seen_.insert(r).second) {
        working_.push_back(r);
        delta.push_back(std::move(r));
      }
    }

    constexpr int kMaxIterations = 1000000;
    int iterations = 0;
    while (!delta.empty()) {
      if (++iterations > kMaxIterations) {
        return Status::Aborted("recursive table expression did not converge");
      }
      ++ctx->stats().recursion_iterations;
      const std::vector<Row>& visible = semi_naive_ ? delta : working_;
      ctx->SetIterationTable(recursion_, &visible);
      STARBURST_RETURN_IF_ERROR(step_->Open(ctx));
      produced.clear();
      drained = DrainOperatorInto(step_.get(), &scratch, &produced);
      step_->Close();
      ctx->SetIterationTable(recursion_, nullptr);
      STARBURST_RETURN_IF_ERROR(drained);

      std::vector<Row> next_delta;
      for (Row& r : produced) {
        if (seen_.insert(r).second) {
          working_.push_back(r);
          next_delta.push_back(std::move(r));
        }
      }
      delta = std::move(next_delta);
    }
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= working_.size()) return false;
    *row = working_[pos_++];
    return true;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    return FillBatchFromRows(working_, &pos_, batch);
  }

  void CloseImpl() override {
    working_.clear();
    seen_.clear();
  }

 private:
  OperatorPtr base_, step_;
  const qgm::Box* recursion_;
  bool semi_naive_;
  std::vector<Row> working_;
  std::unordered_set<Row, RowHash> seen_;
  size_t pos_ = 0;
};

}  // namespace

OperatorPtr MakeRecurseOp(OperatorPtr base, OperatorPtr step,
                          const qgm::Box* recursion_box, size_t iterref_count,
                          bool semi_naive) {
  return std::make_unique<RecurseOp>(std::move(base), std::move(step),
                                     recursion_box, iterref_count, semi_naive);
}

}  // namespace starburst::exec
