#ifndef STARBURST_PARSER_LEXER_H_
#define STARBURST_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "parser/token.h"

namespace starburst {

/// Splits Hydrogen text into tokens. `--` comments run to end of line.
class Lexer {
 public:
  explicit Lexer(std::string text) : text_(std::move(text)) {}

  /// Tokenizes the whole input (the final token is kEof).
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> NextToken();
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= text_.size(); }
  void SkipWhitespaceAndComments();
  Token MakeToken(TokenKind kind, size_t start) const;

  std::string text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

}  // namespace starburst

#endif  // STARBURST_PARSER_LEXER_H_
