#ifndef STARBURST_PARSER_TOKEN_H_
#define STARBURST_PARSER_TOKEN_H_

#include <string>

namespace starburst {

enum class TokenKind {
  kEof,
  kIdentifier,   // foo, "quoted"
  kIntLiteral,   // 42
  kDoubleLiteral,  // 1.5
  kStringLiteral,  // 'text'
  // punctuation / operators
  kLParen, kRParen, kComma, kDot, kSemicolon, kStar,
  kPlus, kMinus, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kConcat,    // ||
  kQuestion,  // ? positional parameter marker
};

/// One lexical token of Hydrogen. Keywords are identifiers; the parser
/// recognizes them case-insensitively (SQL heritage).
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // identifier name or literal spelling
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;     // byte offset in the query text, for diagnostics
  size_t line = 1;
  size_t column = 1;

  std::string Describe() const;
};

}  // namespace starburst

#endif  // STARBURST_PARSER_TOKEN_H_
