#ifndef STARBURST_COMMON_VALUE_H_
#define STARBURST_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/datatype.h"
#include "common/result.h"

namespace starburst {

/// A single runtime datum: SQL NULL, one of the built-in scalars, or an
/// opaque extension payload interpreted through the TypeRegistry.
class Value {
 public:
  /// Payload of an externally-defined type instance.
  struct Ext {
    std::string type_name;
    std::string payload;
    bool operator==(const Ext& o) const {
      return type_name == o.type_name && payload == o.payload;
    }
  };

  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Data(b)); }
  static Value Int(int64_t i) { return Value(Data(i)); }
  static Value Double(double d) { return Value(Data(d)); }
  static Value String(std::string s) { return Value(Data(std::move(s))); }
  static Value Extension(std::string type_name, std::string payload) {
    return Value(Data(Ext{std::move(type_name), std::move(payload)}));
  }

  TypeId type_id() const { return static_cast<TypeId>(data_.index()); }
  DataType type() const;

  bool is_null() const { return type_id() == TypeId::kNull; }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }
  const Ext& ext_value() const { return std::get<Ext>(data_); }

  /// Numeric value widened to double; error for non-numeric.
  Result<double> AsDouble() const;
  /// Numeric value narrowed to int64 (doubles truncate); error otherwise.
  Result<int64_t> AsInt() const;

  /// SQL-style three-way comparison (<0, 0, >0). NULLs are *not* handled
  /// here — callers implement three-valued logic; comparing a NULL or
  /// incompatible types yields TypeError. INT and DOUBLE inter-compare.
  Result<int> Compare(const Value& other) const;

  /// Total order used by sorting, B-trees and grouping: NULL sorts before
  /// everything; same-type values compare naturally; numeric types
  /// inter-compare. Never fails for values of the same column type.
  int CompareTotal(const Value& other) const;

  /// Structural equality (NULL == NULL is true). Used by tests and
  /// duplicate elimination, not by SQL `=`.
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  size_t Hash() const;

  /// Approximate resident bytes of this value, heap payloads included.
  /// Feeds MemoryTracker reservations — an estimate, not allocator truth.
  size_t MemoryBytes() const;

  /// Display form: NULL, TRUE, 42, 1.5, 'text', or the extension renderer.
  std::string ToString() const;

 private:
  using Data = std::variant<std::monostate, bool, int64_t, double, std::string, Ext>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

}  // namespace starburst

#endif  // STARBURST_COMMON_VALUE_H_
