file(REMOVE_RECURSE
  "CMakeFiles/starburst_ext.dir/ext/majority.cc.o"
  "CMakeFiles/starburst_ext.dir/ext/majority.cc.o.d"
  "CMakeFiles/starburst_ext.dir/ext/outer_join.cc.o"
  "CMakeFiles/starburst_ext.dir/ext/outer_join.cc.o.d"
  "CMakeFiles/starburst_ext.dir/ext/sample_function.cc.o"
  "CMakeFiles/starburst_ext.dir/ext/sample_function.cc.o.d"
  "CMakeFiles/starburst_ext.dir/ext/spatial.cc.o"
  "CMakeFiles/starburst_ext.dir/ext/spatial.cc.o.d"
  "CMakeFiles/starburst_ext.dir/ext/statistics_functions.cc.o"
  "CMakeFiles/starburst_ext.dir/ext/statistics_functions.cc.o.d"
  "libstarburst_ext.a"
  "libstarburst_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
