// An interactive Hydrogen shell over the embedded engine — the artifact a
// downstream user reaches for first. Reads ';'-terminated statements from
// stdin; `\timing` toggles the Figure-1 phase report, `\q` quits.
//
//   ./example_repl            # interactive
//   ./example_repl < file.sql # batch

#include <cstdio>
#include <iostream>
#include <string>

#include "engine/database.h"
#include "ext/extensions.h"

using starburst::Database;
using starburst::Result;
using starburst::ResultSet;

int main() {
  Database db;
  (void)starburst::ext::RegisterAllExtensions(&db);
  bool timing = false;
  bool tty = true;

  std::printf("Starburst/Corona shell — Hydrogen statements end with ';'\n"
              "meta: \\timing toggles phase timings, \\q quits\n");

  std::string buffer;
  std::string line;
  while (true) {
    if (tty) std::printf(buffer.empty() ? "starburst> " : "      ...> ");
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\q" || line == "\\quit") break;
      if (line == "\\timing") {
        timing = !timing;
        std::printf("timing %s\n", timing ? "on" : "off");
      } else {
        std::printf("unknown meta command: %s\n", line.c_str());
      }
      continue;
    }

    buffer += line + "\n";
    // Execute once a ';' arrives (statements may span lines).
    if (buffer.find(';') == std::string::npos) continue;
    std::string sql = buffer;
    buffer.clear();
    if (sql.find_first_not_of(" \t\n;") == std::string::npos) continue;

    Result<ResultSet> result = db.Execute(sql);
    if (!result.ok()) {
      std::printf("ERROR: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->rows().empty() && result->column_names().size() == 1 &&
        result->column_names()[0] == "plan") {
      std::printf("%s", result->rows()[0][0].string_value().c_str());
    } else {
      std::printf("%s", result->ToString().c_str());
    }
    if (timing) {
      const starburst::QueryMetrics& m = db.last_metrics();
      std::printf("parse %.0f | bind %.0f | rewrite %.0f | optimize %.0f | "
                  "refine %.0f | execute %.0f (us)\n",
                  m.parse_us, m.bind_us, m.rewrite_us, m.optimize_us,
                  m.refine_us, m.execute_us);
    }
  }
  return 0;
}
