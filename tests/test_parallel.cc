#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/parallel/morsel.h"
#include "exec/parallel/task_scheduler.h"

namespace starburst {
namespace {

// ---------------------------------------------------------------------------
// TaskScheduler
// ---------------------------------------------------------------------------

TEST(TaskScheduler, RunsEveryTaskExactlyOnce) {
  exec::parallel::TaskScheduler scheduler(3);
  std::atomic<int> counter{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  ASSERT_TRUE(scheduler.RunParallel(std::move(tasks)).ok());
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskScheduler, SerialFastPathWithZeroWorkers) {
  exec::parallel::TaskScheduler scheduler(0);
  std::atomic<int> counter{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&counter] {
      ++counter;
      return Status::OK();
    });
  }
  ASSERT_TRUE(scheduler.RunParallel(std::move(tasks)).ok());
  EXPECT_EQ(counter.load(), 10);
}

TEST(TaskScheduler, PropagatesFirstErrorAndStillRunsEveryTask) {
  exec::parallel::TaskScheduler scheduler(2);
  std::atomic<int> counter{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&counter, i]() -> Status {
      counter.fetch_add(1, std::memory_order_relaxed);
      if (i == 7) return Status::Internal("task seven failed");
      return Status::OK();
    });
  }
  Status status = scheduler.RunParallel(std::move(tasks));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("task seven failed"), std::string::npos);
  EXPECT_EQ(counter.load(), 20);
}

TEST(TaskScheduler, ConvertsExceptionsToStatus) {
  exec::parallel::TaskScheduler scheduler(2);
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([]() -> Status { throw std::runtime_error("boom"); });
  Status status = scheduler.RunParallel(std::move(tasks));
  EXPECT_FALSE(status.ok());
}

TEST(TaskScheduler, ReusableAcrossBatches) {
  exec::parallel::TaskScheduler scheduler(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    std::vector<std::function<Status()>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
    }
    ASSERT_TRUE(scheduler.RunParallel(std::move(tasks)).ok());
    EXPECT_EQ(counter.load(), 16);
  }
}

// ---------------------------------------------------------------------------
// MorselSource
// ---------------------------------------------------------------------------

TEST(MorselSource, CoversRangeDisjointly) {
  exec::parallel::MorselSource source;
  source.Reset(/*total_pages=*/41, /*grain=*/4);
  std::vector<bool> covered(41, false);
  PageNo begin, end;
  size_t morsels = 0;
  while (source.Claim(&begin, &end)) {
    ++morsels;
    ASSERT_LT(begin, end);
    ASSERT_LE(end, 41u);
    for (PageNo p = begin; p < end; ++p) {
      EXPECT_FALSE(covered[p]) << "page " << p << " claimed twice";
      covered[p] = true;
    }
  }
  EXPECT_EQ(morsels, 11u);  // ceil(41 / 4)
  for (size_t p = 0; p < covered.size(); ++p) {
    EXPECT_TRUE(covered[p]) << "page " << p << " never claimed";
  }
}

TEST(MorselSource, EmptyTableYieldsNothing) {
  exec::parallel::MorselSource source;
  source.Reset(0);
  PageNo begin, end;
  EXPECT_FALSE(source.Claim(&begin, &end));
}

TEST(MorselSource, ResetRestartsDispensing) {
  exec::parallel::MorselSource source;
  source.Reset(8, 4);
  PageNo begin, end;
  while (source.Claim(&begin, &end)) {
  }
  source.Reset(8, 4);
  ASSERT_TRUE(source.Claim(&begin, &end));
  EXPECT_EQ(begin, 0u);
}

// ---------------------------------------------------------------------------
// Parallel execution matches serial execution on a SQL corpus
// ---------------------------------------------------------------------------

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must("CREATE TABLE t (id INT, grp INT, val DOUBLE, tag STRING)");
    Must("CREATE TABLE dim (grp INT, label STRING)");
    // Enough rows to span many pages (morsels), with NULLs mixed into
    // join keys, group keys, and aggregated values.
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 500; ++i) {
      if (i > 0) insert += ", ";
      std::string grp = i % 11 == 0 ? "NULL" : std::to_string(i % 7);
      std::string val = i % 13 == 0 ? "NULL" : std::to_string(i * 0.5);
      std::string tag = i % 3 == 0 ? "'a'" : "'b'";
      insert += "(" + std::to_string(i) + ", " + grp + ", " + val + ", " +
                tag + ")";
    }
    Must(insert);
    Must("INSERT INTO dim VALUES (0, 'zero'), (1, 'one'), (2, 'two'), "
         "(3, 'three'), (NULL, 'null-key'), (9, 'unmatched')");
    Must("ANALYZE");
    // Parallelize everything, however small.
    Must("SET parallel_min_rows = 0");
  }

  void Must(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  std::vector<Row> RunAt(const std::string& sql, int parallelism) {
    Result<ResultSet> set_result =
        db_.Execute("SET parallelism = " + std::to_string(parallelism));
    EXPECT_TRUE(set_result.ok());
    Result<std::vector<Row>> r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " @ parallelism=" << parallelism << " -> "
                        << r.status().ToString();
    if (!r.ok()) return {};
    return r.TakeValue();
  }

  /// Runs `sql` serially and at parallelism 2 and 8; all three must
  /// produce identical multisets of rows (sorted compare — the corpus
  /// queries below either have no ORDER BY or a total one).
  void ExpectParallelMatchesSerial(const std::string& sql) {
    std::vector<Row> serial = RunAt(sql, 1);
    for (int workers : {2, 8}) {
      std::vector<Row> parallel = RunAt(sql, workers);
      std::vector<Row> a = serial, b = parallel;
      std::sort(a.begin(), a.end(),
                [](const Row& x, const Row& y) { return x.CompareTotal(y) < 0; });
      std::sort(b.begin(), b.end(),
                [](const Row& x, const Row& y) { return x.CompareTotal(y) < 0; });
      ASSERT_EQ(a.size(), b.size())
          << sql << " row count differs at parallelism=" << workers;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].CompareTotal(b[i]), 0)
            << sql << " differs at row " << i << " parallelism=" << workers;
      }
    }
  }

  Database db_;
};

TEST_F(ParallelExecTest, PlainScan) {
  ExpectParallelMatchesSerial("SELECT id, grp, val FROM t");
}

TEST_F(ParallelExecTest, FilteredScan) {
  ExpectParallelMatchesSerial(
      "SELECT id, val FROM t WHERE val > 50 AND tag = 'a'");
}

TEST_F(ParallelExecTest, ScanWithExpressionHead) {
  ExpectParallelMatchesSerial(
      "SELECT id * 2, val + 1 FROM t WHERE id % 5 = 0");
}

TEST_F(ParallelExecTest, HashJoin) {
  ExpectParallelMatchesSerial(
      "SELECT t.id, dim.label FROM t, dim WHERE t.grp = dim.grp");
}

TEST_F(ParallelExecTest, LeftOuterJoin) {
  ExpectParallelMatchesSerial(
      "SELECT t.id, dim.label FROM t LEFT JOIN dim ON t.grp = dim.grp");
}

TEST_F(ParallelExecTest, SemiJoinIn) {
  ExpectParallelMatchesSerial(
      "SELECT id FROM t WHERE grp IN (SELECT grp FROM dim)");
}

TEST_F(ParallelExecTest, AntiJoinNotExists) {
  ExpectParallelMatchesSerial(
      "SELECT id FROM t WHERE NOT EXISTS "
      "(SELECT 1 FROM dim WHERE dim.grp = t.grp)");
}

TEST_F(ParallelExecTest, GroupByAggregates) {
  ExpectParallelMatchesSerial(
      "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) FROM t GROUP BY grp");
}

TEST_F(ParallelExecTest, GroupByDistinctAggregate) {
  ExpectParallelMatchesSerial(
      "SELECT tag, COUNT(DISTINCT grp) FROM t GROUP BY tag");
}

TEST_F(ParallelExecTest, GlobalAggregate) {
  ExpectParallelMatchesSerial("SELECT COUNT(*), SUM(val), AVG(val) FROM t");
}

TEST_F(ParallelExecTest, Distinct) {
  ExpectParallelMatchesSerial("SELECT DISTINCT grp, tag FROM t");
}

TEST_F(ParallelExecTest, OrderByAboveGather) {
  // ORDER BY sits above the gather; row order itself must match.
  Result<ResultSet> set_result = db_.Execute("SET parallelism = 8");
  ASSERT_TRUE(set_result.ok());
  Result<std::vector<Row>> parallel =
      db_.Query("SELECT id, val FROM t WHERE tag = 'b' ORDER BY id");
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(db_.Execute("SET parallelism = 1").ok());
  Result<std::vector<Row>> serial =
      db_.Query("SELECT id, val FROM t WHERE tag = 'b' ORDER BY id");
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i].CompareTotal((*parallel)[i]), 0) << "row " << i;
  }
}

TEST_F(ParallelExecTest, JoinOfJoins) {
  Must("CREATE TABLE dim2 (label STRING, rank INT)");
  Must("INSERT INTO dim2 VALUES ('zero', 10), ('one', 11), ('two', 12)");
  Must("ANALYZE");
  ExpectParallelMatchesSerial(
      "SELECT t.id, dim2.rank FROM t, dim, dim2 "
      "WHERE t.grp = dim.grp AND dim.label = dim2.label");
}

TEST_F(ParallelExecTest, ExplainAnalyzeShowsGather) {
  Must("SET parallelism = 4");
  Result<std::vector<Row>> rows =
      db_.Query("EXPLAIN ANALYZE SELECT id FROM t WHERE val > 10");
  ASSERT_TRUE(rows.ok());
  bool saw_gather = false;
  for (const Row& row : *rows) {
    if (row[0].string_value().find("GATHER") != std::string::npos) {
      saw_gather = true;
    }
  }
  EXPECT_TRUE(saw_gather) << "EXPLAIN ANALYZE should show the gather node";
}

TEST_F(ParallelExecTest, SetStatementValidation) {
  EXPECT_FALSE(db_.Execute("SET parallelism = -2").ok());
  EXPECT_FALSE(db_.Execute("SET no_such_option = 1").ok());
  ASSERT_TRUE(db_.Execute("SET parallelism = DEFAULT").ok());
  EXPECT_GE(db_.options().exec.parallelism, 1u);
  ASSERT_TRUE(db_.Execute("SET parallel_min_rows = DEFAULT").ok());
  EXPECT_EQ(db_.options().exec.parallel_min_rows, 1024.0);
}

TEST_F(ParallelExecTest, WorthGateKeepsSmallQueriesSerial) {
  // With a high row threshold no gather is inserted for this table.
  Must("SET parallel_min_rows = 1000000");
  Must("SET parallelism = 8");
  Result<std::vector<Row>> rows =
      db_.Query("EXPLAIN ANALYZE SELECT id FROM t");
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) {
    EXPECT_EQ(row[0].string_value().find("GATHER"), std::string::npos);
  }
}

}  // namespace
}  // namespace starburst
