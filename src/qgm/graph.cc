#include <algorithm>
#include <functional>
#include <set>

#include "catalog/catalog.h"
#include "qgm/box.h"

namespace starburst::qgm {

Box* Graph::NewBox(BoxKind kind) {
  auto box = std::make_unique<Box>();
  box->id = next_box_id_++;
  box->kind = kind;
  boxes_.push_back(std::move(box));
  return boxes_.back().get();
}

std::unique_ptr<Quantifier> Graph::NewQuantifier(QuantifierType type,
                                                 Box* input) {
  auto q = std::make_unique<Quantifier>();
  q->id = next_quantifier_id_++;
  q->type = type;
  q->input = input;
  return q;
}

namespace {

void Visit(Box* box, std::set<Box*>* seen, std::vector<Box*>* order) {
  if (box == nullptr || seen->count(box)) return;
  seen->insert(box);
  for (const auto& q : box->quantifiers) {
    // Recursion back-edges go through kIterationRef, which has no
    // quantifiers, so plain DFS terminates.
    Visit(q->input, seen, order);
  }
  order->push_back(box);
}

}  // namespace

std::vector<Box*> Graph::BottomUpOrder() const {
  std::set<Box*> seen;
  std::vector<Box*> order;
  Visit(root_, &seen, &order);
  return order;
}

void Graph::GarbageCollect() {
  std::set<Box*> seen;
  std::vector<Box*> order;
  Visit(root_, &seen, &order);
  // Iteration refs keep their recursion box alive implicitly.
  for (Box* b : order) {
    if (b->kind == BoxKind::kIterationRef && b->recursion != nullptr) {
      seen.insert(b->recursion);
    }
  }
  boxes_.erase(std::remove_if(boxes_.begin(), boxes_.end(),
                              [&](const std::unique_ptr<Box>& b) {
                                return seen.count(b.get()) == 0;
                              }),
               boxes_.end());
}

namespace {

/// Walks `e` bottom-up applying `fn` to every node; first error wins.
Status ForEachExpr(const Expr* e, const std::function<Status(const Expr&)>& fn) {
  if (e == nullptr) return Status::OK();
  for (const ExprPtr& child : e->children) {
    STARBURST_RETURN_IF_ERROR(ForEachExpr(child.get(), fn));
  }
  return fn(*e);
}

}  // namespace

Status Graph::Validate() const {
  if (root_ == nullptr) return Status::Internal("QGM: no root box");
  // Arc consistency: range edges may only target boxes the graph owns
  // (a dangling input box means a rule freed or forgot to re-point it).
  std::set<const Box*> members;
  for (const auto& b : boxes_) members.insert(b.get());
  if (members.count(root_) == 0) {
    return Status::Internal("QGM: root box is not owned by the graph");
  }
  for (Box* box : BottomUpOrder()) {
    // Heads must be typed, and derived heads must have expressions.
    for (const HeadColumn& h : box->head) {
      bool leaf = box->kind == BoxKind::kBaseTable ||
                  box->kind == BoxKind::kValues ||
                  box->kind == BoxKind::kIterationRef ||
                  box->kind == BoxKind::kSetOp ||
                  box->kind == BoxKind::kTableFunction ||
                  box->kind == BoxKind::kChoose ||
                  box->kind == BoxKind::kRecursiveUnion;
      if (!leaf && h.expr == nullptr) {
        return Status::Internal("QGM: box " + box->Label() + " head column '" +
                                h.name + "' has no defining expression");
      }
    }
    // Head arity of leaf and set-operation boxes.
    if (box->kind == BoxKind::kBaseTable && box->table != nullptr &&
        box->head.size() != box->table->schema.num_columns()) {
      return Status::Internal("QGM: base table box " + box->Label() +
                              " head arity does not match the schema");
    }
    if (box->kind == BoxKind::kSetOp) {
      for (const auto& q : box->quantifiers) {
        if (q->input != nullptr && q->input->head.size() != box->head.size()) {
          return Status::Internal("QGM: set operation " + box->Label() +
                                  " input arity mismatch");
        }
      }
    }
    // Quantifier sanity.
    for (const auto& q : box->quantifiers) {
      if (q->owner != box) {
        return Status::Internal("QGM: quantifier Q" + std::to_string(q->id) +
                                " owner mismatch in " + box->Label());
      }
      if (q->input == nullptr) {
        return Status::Internal("QGM: quantifier Q" + std::to_string(q->id) +
                                " has no range edge");
      }
      if (members.count(q->input) == 0) {
        return Status::Internal("QGM: quantifier Q" + std::to_string(q->id) +
                                " in " + box->Label() +
                                " ranges over a box the graph does not own");
      }
    }
    // Every expression must reference only this box's quantifiers — or,
    // for correlation (Figure 2's Q1–Q3 qualifier edge), quantifiers of an
    // ancestor box from which this box is reachable through range edges.
    auto reachable_from = [&](Box* from, Box* target) {
      std::set<Box*> s;
      std::vector<Box*> o;
      Visit(from, &s, &o);
      return s.count(target) > 0;
    };
    auto check_expr = [&](const Expr* e) -> Status {
      if (e == nullptr) return Status::OK();
      std::set<Quantifier*> used;
      e->CollectQuantifiers(&used);
      for (Quantifier* q : used) {
        // Dangling detection: the owner must still list the quantifier
        // (a rule that erased it must also rewrite referencing exprs).
        // RemoveQuantifier nulls the owner, so that is dangling too.
        bool listed = false;
        if (q->owner != nullptr) {
          for (const auto& owned : q->owner->quantifiers) {
            if (owned.get() == q) {
              listed = true;
              break;
            }
          }
        }
        if (!listed) {
          return Status::Internal(
              "QGM: expression '" + e->ToString() + "' in " + box->Label() +
              " references dangling quantifier Q" + std::to_string(q->id));
        }
        if (q->owner != box && !reachable_from(q->owner, box)) {
          return Status::Internal(
              "QGM: expression '" + e->ToString() + "' in " + box->Label() +
              " references foreign quantifier Q" + std::to_string(q->id));
        }
      }
      // Column references must fit the ranged-over box's head arity.
      return ForEachExpr(e, [&](const Expr& node) -> Status {
        if (node.kind == Expr::Kind::kColumnRef && node.quantifier != nullptr &&
            node.quantifier->input != nullptr &&
            node.column >= node.quantifier->input->head.size()) {
          return Status::Internal(
              "QGM: column reference '" + node.ToString() + "' in " +
              box->Label() + " exceeds the head arity of its input box");
        }
        return Status::OK();
      });
    };
    for (const auto& p : box->predicates) {
      STARBURST_RETURN_IF_ERROR(check_expr(p.get()));
    }
    for (const auto& h : box->head) {
      STARBURST_RETURN_IF_ERROR(check_expr(h.expr.get()));
    }
    for (const auto& g : box->group_keys) {
      STARBURST_RETURN_IF_ERROR(check_expr(g.get()));
    }
    for (const auto& a : box->aggregates) {
      STARBURST_RETURN_IF_ERROR(check_expr(a.arg.get()));
    }
  }
  for (const OrderKey& k : order_by) {
    if (k.head_column >= root_->head.size()) {
      return Status::Internal("QGM: ORDER BY column out of range");
    }
  }
  return Status::OK();
}

}  // namespace starburst::qgm
