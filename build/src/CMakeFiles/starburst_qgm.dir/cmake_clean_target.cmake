file(REMOVE_RECURSE
  "libstarburst_qgm.a"
)
