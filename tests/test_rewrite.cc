#include <gtest/gtest.h>

#include "parser/parser.h"
#include "qgm/binder.h"
#include "qgm/printer.h"
#include "rewrite/rule_engine.h"

namespace starburst {
namespace {

using qgm::Box;
using qgm::BoxKind;
using qgm::QuantifierType;
using rewrite::RuleEngine;

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef quotations;
    quotations.name = "quotations";
    quotations.schema = TableSchema({{"partno", DataType::Int(), false},
                                     {"price", DataType::Double(), true},
                                     {"order_qty", DataType::Int(), true}});
    TableDef inventory;
    inventory.name = "inventory";
    inventory.schema = TableSchema({{"partno", DataType::Int(), false},
                                    {"onhand_qty", DataType::Int(), true},
                                    {"type", DataType::String(), true}});
    inventory.unique_keys = {{0}};
    ASSERT_TRUE(catalog_.CreateTable(quotations).ok());
    ASSERT_TRUE(catalog_.CreateTable(inventory).ok());
    engine_ = rewrite::MakeDefaultRuleEngine();
  }

  std::unique_ptr<qgm::Graph> Bind(const std::string& sql) {
    auto parsed = Parser::ParseQueryText(sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    qgm::Binder binder(&catalog_);
    Result<std::unique_ptr<qgm::Graph>> g = binder.BindQuery(**parsed);
    EXPECT_TRUE(g.ok()) << sql << " -> " << g.status().ToString();
    return g.ok() ? g.TakeValue() : nullptr;
  }

  RuleEngine::Stats Run(qgm::Graph* graph, RuleEngine::Options options = {}) {
    options.paranoid_validation = true;
    Result<RuleEngine::Stats> stats = engine_.Run(graph, &catalog_, options);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return stats.ok() ? *stats : RuleEngine::Stats{};
  }

  int Fired(const RuleEngine::Stats& stats, const std::string& rule) {
    for (const auto& [name, count] : stats.fired_by_rule) {
      if (name == rule) return count;
    }
    return 0;
  }

  Catalog catalog_;
  RuleEngine engine_;
};

TEST_F(RewriteTest, Figure2SubqueryToJoinAndMerge) {
  // The paper's worked example: Rule 1 converts the E quantifier to F,
  // Rule 2 merges the two SELECT operations into one box — Figure 2(b).
  auto graph = Bind(
      "SELECT partno, price, order_qty FROM quotations Q1 "
      "WHERE Q1.partno IN (SELECT partno FROM inventory Q3 "
      "WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_EQ(Fired(stats, "subquery_to_join"), 1);
  EXPECT_EQ(Fired(stats, "select_merge"), 1);

  Box* root = graph->root();
  ASSERT_EQ(root->quantifiers.size(), 2u);
  EXPECT_EQ(root->quantifiers[0]->type, QuantifierType::kForEach);
  EXPECT_EQ(root->quantifiers[1]->type, QuantifierType::kForEach);
  EXPECT_EQ(root->predicates.size(), 3u);
  // Both inputs are now base tables: a single select box remains.
  EXPECT_EQ(root->quantifiers[0]->input->kind, BoxKind::kBaseTable);
  EXPECT_EQ(root->quantifiers[1]->input->kind, BoxKind::kBaseTable);
}

TEST_F(RewriteTest, SubqueryToJoinAddsDistinctWhenNeeded) {
  // quotations.partno is NOT a key: converting IN to join must enforce
  // duplicate elimination on the subquery side.
  auto graph = Bind(
      "SELECT partno FROM inventory "
      "WHERE partno IN (SELECT partno FROM quotations)");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_EQ(Fired(stats, "subquery_to_join"), 1);
  Box* root = graph->root();
  // The subquery box survives (dedup blocks the merge) and dedups.
  bool found_distinct_sub = false;
  for (const auto& q : root->quantifiers) {
    if (q->input->kind == BoxKind::kSelect && q->input->distinct_enforced) {
      found_distinct_sub = true;
    }
  }
  EXPECT_TRUE(found_distinct_sub);
}

TEST_F(RewriteTest, ExistsIsNotConverted) {
  auto graph = Bind(
      "SELECT partno FROM inventory i WHERE EXISTS "
      "(SELECT 1 FROM quotations q WHERE q.partno = i.partno)");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_EQ(Fired(stats, "subquery_to_join"), 0);
  EXPECT_EQ(graph->root()->quantifiers[1]->type, QuantifierType::kExists);
}

TEST_F(RewriteTest, ViewMergeFlattens) {
  ASSERT_TRUE(catalog_
                  .CreateView({"cpu_view",
                               {},
                               "SELECT partno, onhand_qty FROM inventory "
                               "WHERE type = 'CPU'"})
                  .ok());
  auto graph = Bind("SELECT partno FROM cpu_view WHERE onhand_qty > 5");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_GE(Fired(stats, "select_merge"), 1);
  Box* root = graph->root();
  ASSERT_EQ(root->quantifiers.size(), 1u);
  EXPECT_EQ(root->quantifiers[0]->input->kind, BoxKind::kBaseTable);
  EXPECT_EQ(root->predicates.size(), 2u);  // view's + query's
}

TEST_F(RewriteTest, DistinctViewDoesNotMergeWithoutOuterDistinct) {
  ASSERT_TRUE(catalog_
                  .CreateView({"types", {},
                               "SELECT DISTINCT type FROM inventory"})
                  .ok());
  auto graph = Bind("SELECT type FROM types");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_EQ(Fired(stats, "select_merge"), 0);
  // With DISTINCT on the consumer, Rule 2's condition allows the merge.
  auto graph2 = Bind("SELECT DISTINCT type FROM types");
  RuleEngine::Stats stats2 = Run(graph2.get());
  EXPECT_EQ(Fired(stats2, "select_merge"), 1);
  EXPECT_TRUE(graph2->root()->distinct_enforced);
}

TEST_F(RewriteTest, PredicatePushdownThroughGroupBy) {
  auto graph = Bind(
      "SELECT t, n FROM (SELECT type t, COUNT(*) n FROM inventory "
      "GROUP BY type) g WHERE t = 'CPU' AND n > 1");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_EQ(Fired(stats, "predicate_through_groupby"), 1);  // key pred only
  // The aggregate predicate (n > 1) must stay above the GROUP BY.
  Box* root = graph->root();
  EXPECT_EQ(root->predicates.size(), 1u);
  // The key predicate landed in the box under the GROUP BY.
  Box* gb = root->quantifiers[0]->input;
  ASSERT_EQ(gb->kind, BoxKind::kGroupBy);
  Box* low = gb->quantifiers[0]->input;
  EXPECT_EQ(low->predicates.size(), 1u);
}

TEST_F(RewriteTest, TransitivityDerivesLiteralReplicas) {
  auto graph = Bind(
      "SELECT q.price FROM quotations q, inventory i "
      "WHERE q.partno = i.partno AND i.partno = 3");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_GE(Fired(stats, "predicate_transitivity"), 1);
  // q.partno = 3 was derived.
  bool found = false;
  for (const auto& p : graph->root()->predicates) {
    if (p->ToString() == "(q.partno = 3)") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RewriteTest, ProjectionPruningDropsUnusedViewColumns) {
  ASSERT_TRUE(catalog_
                  .CreateView({"wide", {},
                               "SELECT DISTINCT partno, onhand_qty, type "
                               "FROM inventory"})
                  .ok());
  // DISTINCT blocks both merging and pruning (the dedup key would change).
  auto g1 = Bind("SELECT partno FROM wide");
  RuleEngine::Stats s1 = Run(g1.get());
  EXPECT_EQ(Fired(s1, "projection_pruning"), 0);

  // An aggregation input is prunable: only the needed columns survive.
  auto g2 = Bind("SELECT COUNT(*) FROM (SELECT partno, onhand_qty, type "
                 "FROM inventory) w WHERE partno > 1");
  RuleEngine::Stats s2 = Run(g2.get());
  EXPECT_TRUE(g2->Validate().ok());
}

TEST_F(RewriteTest, ConstantFolding) {
  auto graph = Bind("SELECT partno FROM inventory WHERE 1 + 1 = 2");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_GE(Fired(stats, "constant_folding"), 1);
  EXPECT_TRUE(graph->root()->predicates.empty());  // TRUE conjunct removed
}

TEST_F(RewriteTest, RedundantSelfJoinEliminated) {
  auto graph = Bind(
      "SELECT a.type FROM inventory a, inventory b "
      "WHERE a.partno = b.partno AND b.onhand_qty > 5");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_EQ(Fired(stats, "redundant_join_elimination"), 1);
  EXPECT_EQ(graph->root()->quantifiers.size(), 1u);
  // b's predicate was remapped onto a.
  ASSERT_EQ(graph->root()->predicates.size(), 1u);
  EXPECT_EQ(graph->root()->predicates[0]->ToString(), "(a.onhand_qty > 5)");
}

TEST_F(RewriteTest, NoRedundantJoinWithoutKey) {
  // quotations has no unique key: the self-join is NOT redundant.
  auto graph = Bind(
      "SELECT a.price FROM quotations a, quotations b "
      "WHERE a.partno = b.partno");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_EQ(Fired(stats, "redundant_join_elimination"), 0);
  EXPECT_EQ(graph->root()->quantifiers.size(), 2u);
}

TEST_F(RewriteTest, BudgetStopsAtConsistentState) {
  auto graph = Bind(
      "SELECT partno, price, order_qty FROM quotations Q1 "
      "WHERE Q1.partno IN (SELECT partno FROM inventory Q3 "
      "WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')");
  RuleEngine::Options options;
  options.budget = 1;  // only Rule 1 fires
  options.paranoid_validation = true;
  Result<RuleEngine::Stats> stats = engine_.Run(graph.get(), &catalog_, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->budget_exhausted);
  EXPECT_EQ(stats->rules_fired, 1);
  // "the processing stops at a consistent state (of QGM)".
  EXPECT_TRUE(graph->Validate().ok());
}

TEST_F(RewriteTest, ControlStrategiesReachSameFixpoint) {
  const std::string sql =
      "SELECT partno, price, order_qty FROM quotations Q1 "
      "WHERE Q1.partno IN (SELECT partno FROM inventory Q3 "
      "WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')";
  std::vector<std::string> results;
  for (RuleEngine::ControlStrategy control :
       {RuleEngine::ControlStrategy::kSequential,
        RuleEngine::ControlStrategy::kPriority,
        RuleEngine::ControlStrategy::kStatistical}) {
    auto graph = Bind(sql);
    RuleEngine::Options options;
    options.control = control;
    options.seed = 99;
    Run(graph.get(), options);
    results.push_back(qgm::PrintGraph(*graph));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST_F(RewriteTest, SearchOrdersBothWork) {
  for (RuleEngine::SearchOrder order :
       {RuleEngine::SearchOrder::kDepthFirst,
        RuleEngine::SearchOrder::kBreadthFirst}) {
    auto graph = Bind(
        "SELECT partno FROM (SELECT partno, type FROM inventory "
        "WHERE onhand_qty > 0) x WHERE type = 'CPU'");
    RuleEngine::Options options;
    options.search = order;
    RuleEngine::Stats stats = Run(graph.get(), options);
    EXPECT_GE(stats.rules_fired, 1);
  }
}

TEST_F(RewriteTest, RuleClassFiltering) {
  auto graph = Bind(
      "SELECT partno FROM inventory "
      "WHERE partno IN (SELECT partno FROM quotations)");
  RuleEngine::Options options;
  options.enabled_classes = {"merge"};  // subquery class disabled
  options.paranoid_validation = true;
  Result<RuleEngine::Stats> stats = engine_.Run(graph.get(), &catalog_, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Fired(*stats, "subquery_to_join"), 0);
  EXPECT_EQ(graph->root()->quantifiers[1]->type, QuantifierType::kExists);
}

TEST_F(RewriteTest, RecursionSelectionPushdown) {
  // src is invariant through the step (copied from the iteration), so the
  // consumer's src=3 filter seeds the recursion base.
  auto graph = Bind(
      "WITH RECURSIVE reach(src, dst) AS ("
      "  SELECT partno, onhand_qty FROM inventory"
      "  UNION"
      "  SELECT r.src, i.onhand_qty FROM reach r, inventory i "
      "  WHERE i.partno = r.dst) "
      "SELECT src, dst FROM reach WHERE src = 3");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_EQ(Fired(stats, "recursion_selection_pushdown"), 1);
  // The predicate landed in the recursion's base box.
  Box* root = graph->root();
  EXPECT_TRUE(root->predicates.empty());
  Box* ru = root->quantifiers[0]->input;
  ASSERT_EQ(ru->kind, BoxKind::kRecursiveUnion);
  Box* base = ru->quantifiers[0]->input;
  ASSERT_EQ(base->predicates.size(), 1u);
  EXPECT_NE(base->predicates[0]->ToString().find("= 3"), std::string::npos);
}

TEST_F(RewriteTest, RecursionPushdownBlockedForVariantColumns) {
  // dst changes in the step: filtering it must stay above the fixpoint.
  auto graph = Bind(
      "WITH RECURSIVE reach(src, dst) AS ("
      "  SELECT partno, onhand_qty FROM inventory"
      "  UNION"
      "  SELECT r.src, i.onhand_qty FROM reach r, inventory i "
      "  WHERE i.partno = r.dst) "
      "SELECT src, dst FROM reach WHERE dst = 5");
  RuleEngine::Stats stats = Run(graph.get());
  EXPECT_EQ(Fired(stats, "recursion_selection_pushdown"), 0);
  EXPECT_EQ(graph->root()->predicates.size(), 1u);
}

TEST_F(RewriteTest, DbcRuleAddition) {
  // A DBC adds a (silly) rule: drop LIMIT-less ORDER BY... here we just
  // count select boxes visited to show the extension surface works.
  int visits = 0;
  ASSERT_TRUE(engine_
                  .AddRule(rewrite::RewriteRule{
                      "dbc_probe", "dbc", 0, 1.0,
                      [&visits](const rewrite::RuleContext& ctx) {
                        if (ctx.box->kind == BoxKind::kSelect) ++visits;
                        return false;  // never fires
                      },
                      [](rewrite::RuleContext&) { return Status::OK(); }})
                  .ok());
  EXPECT_EQ(engine_.AddRule(rewrite::RewriteRule{
                                "dbc_probe", "dbc", 0, 1.0,
                                [](const rewrite::RuleContext&) { return false; },
                                [](rewrite::RuleContext&) { return Status::OK(); }})
                .code(),
            StatusCode::kAlreadyExists);
  auto graph = Bind("SELECT partno FROM inventory");
  Run(graph.get());
  EXPECT_GE(visits, 1);
}

}  // namespace
}  // namespace starburst
