# Empty dependencies file for starburst_optimizer.
# This may be replaced when dependencies are built.
