#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <unordered_set>

#include "common/memory_tracker.h"
#include "exec/operators.h"
#include "storage/spill_file.h"

namespace starburst::exec {

namespace {

using SortKeys = std::vector<std::pair<size_t, bool>>;

/// True when `a` orders strictly before `b` under the ORDER BY keys.
/// NULLs compare through Value::CompareTotal (NULL first ascending), so
/// the in-memory sort, the per-run sorts and the merge all rank NULLs
/// identically.
bool SortRowLess(const Row& a, const Row& b, const SortKeys& keys) {
  for (const auto& [slot, asc] : keys) {
    int c = a[slot].CompareTotal(b[slot]);
    if (c != 0) return asc ? c < 0 : c > 0;
  }
  return false;
}

/// Depth-salted hash for grace partitioning: re-partitioning an
/// overflowing partition at depth+1 must redistribute its keys, so the
/// recursion level perturbs the row hash (splitmix64 finalizer).
size_t PartitionHash(const Row& row, int depth) {
  uint64_t x = RowHash{}(row) + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(depth + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}

/// Streams the union of sorted runs in sort order. Ties break on run
/// index, and each run preserves its own (stable-sorted) order — since
/// runs are cut from the input in arrival order, the merged stream is
/// exactly the stable sort of the whole input. The same invariant holds
/// across multi-pass merges because passes combine *consecutive* runs:
/// the merged output becomes one run whose internal tie order is already
/// the original run order.
class RunMerger {
 public:
  explicit RunMerger(const SortKeys* keys) : keys_(keys) {}

  /// Opens readers over runs [begin, end) and primes the heap. Runs must
  /// be Finish()ed.
  Status Init(const std::vector<std::unique_ptr<SpillFile>>& runs,
              size_t begin, size_t end) {
    readers_.clear();
    heap_.clear();
    for (size_t i = begin; i < end; ++i) {
      STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile::Reader> reader,
                                 runs[i]->OpenReader());
      readers_.push_back(std::move(reader));
      Entry e;
      e.run = readers_.size() - 1;
      STARBURST_ASSIGN_OR_RETURN(bool more, readers_.back()->NextRow(&e.row));
      if (more) heap_.push_back(std::move(e));
    }
    std::make_heap(heap_.begin(), heap_.end(), After{keys_});
    return Status::OK();
  }

  /// Next merged row; false when every run is exhausted.
  Result<bool> Next(Row* row) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), After{keys_});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    *row = std::move(e.row);
    STARBURST_ASSIGN_OR_RETURN(bool more, readers_[e.run]->NextRow(&e.row));
    if (more) {
      heap_.push_back(std::move(e));
      std::push_heap(heap_.begin(), heap_.end(), After{keys_});
    }
    return true;
  }

 private:
  struct Entry {
    Row row;
    size_t run = 0;
  };
  /// Heap "less": a comes out after b. make_heap's max element is then
  /// the earliest row, with equal keys yielding the lower run first.
  struct After {
    const SortKeys* keys;
    bool operator()(const Entry& a, const Entry& b) const {
      if (SortRowLess(a.row, b.row, *keys)) return false;
      if (SortRowLess(b.row, a.row, *keys)) return true;
      return a.run > b.run;
    }
  };

  const SortKeys* keys_;
  std::vector<std::unique_ptr<SpillFile::Reader>> readers_;
  std::vector<Entry> heap_;
};

/// ORDER BY: batch-at-a-time external merge sort. Within budget it is the
/// classic materialize + stable_sort; past it, the build buffer is cut
/// into stable-sorted runs spilled batch-at-a-time, merged k ways back
/// into the stream (multi-pass above kMergeFanIn runs).
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr input, SortKeys keys, uint64_t budget)
      : input_(std::move(input)), keys_(std::move(keys)), budget_(budget) {}

  static constexpr size_t kMergeFanIn = 64;

  Status OpenImpl(ExecContext* ctx) override {
    Status st = OpenSort(ctx);
    // A failed Open must not strand spill runs: cached/prepared plans
    // keep the operator tree alive long after the query, so cleanup
    // cannot be left to the destructor.
    if (!st.ok()) DropState();
    return st;
  }

  Status OpenSort(ExecContext* ctx) {
    DropState();
    ctx_ = ctx;
    tracker_.Configure(budget_, ctx->query_memory());
    batch_size_ = ctx->batch_size();
    STARBURST_RETURN_IF_ERROR(input_->Open(ctx));
    Status built = BuildRuns(ctx);
    input_->Close();
    StatPeakMemory(tracker_.peak());
    if (!built.ok()) return built;
    if (runs_.empty()) {  // everything fit: plain in-memory stable sort
      SortBuffer();
      pos_ = 0;
      return Status::OK();
    }
    if (!rows_.empty()) STARBURST_RETURN_IF_ERROR(SpillRun());
    while (runs_.size() > kMergeFanIn) {
      STARBURST_RETURN_IF_ERROR(MergePass());
    }
    merger_ = std::make_unique<RunMerger>(&keys_);
    STARBURST_RETURN_IF_ERROR(merger_->Init(runs_, 0, runs_.size()));
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    if (merger_ != nullptr) return merger_->Next(row);
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_++];
    return true;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    if (merger_ == nullptr) return FillBatchFromRows(rows_, &pos_, batch);
    while (!batch->full()) {
      Row* slot = batch->AppendSlot();
      STARBURST_ASSIGN_OR_RETURN(bool more, merger_->Next(slot));
      if (!more) {
        batch->PopLast();
        break;
      }
    }
    return !batch->empty();
  }

  void CloseImpl() override { DropState(); }

 private:
  void DropState() {
    rows_.clear();
    runs_.clear();
    merger_.reset();
    pos_ = 0;
    tracker_.Reset();
  }

  /// Drains the input batch-at-a-time into the build buffer, cutting a
  /// sorted run to temp storage whenever the ledger tips past budget.
  Status BuildRuns(ExecContext* ctx) {
    RowBatch batch(batch_size_);
    while (true) {
      STARBURST_RETURN_IF_ERROR(ctx->CheckCancel());
      STARBURST_ASSIGN_OR_RETURN(bool more, input_->NextBatch(&batch));
      if (!more) return Status::OK();
      uint64_t bytes = 0;
      size_t n = batch.size();
      for (size_t i = 0; i < n; ++i) bytes += batch.row(i).MemoryBytes();
      tracker_.Reserve(bytes);
      batch.MoveRowsTo(&rows_);
      if (tracker_.over_budget() && !rows_.empty()) {
        STARBURST_RETURN_IF_ERROR(SpillRun());
      }
    }
  }

  void SortBuffer() {
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       return SortRowLess(a, b, keys_);
                     });
  }

  /// Sorts the build buffer and writes it out as one run, batch-at-a-time.
  Status SpillRun() {
    if (ctx_ != nullptr) STARBURST_RETURN_IF_ERROR(ctx_->CheckCancel());
    SortBuffer();
    STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile> file,
                               SpillFile::Create());
    RowBatch scratch(batch_size_);
    size_t p = 0;
    while (p < rows_.size()) {
      scratch.Clear();
      while (!scratch.full() && p < rows_.size()) {
        *scratch.AppendSlot() = std::move(rows_[p++]);
      }
      STARBURST_RETURN_IF_ERROR(file->AppendBatch(scratch));
    }
    STARBURST_RETURN_IF_ERROR(file->Finish());
    StatSpill(1, file->bytes_written());
    runs_.push_back(std::move(file));
    rows_.clear();
    StatPeakMemory(tracker_.peak());  // capture before Reset clears it
    tracker_.Reset();
    return Status::OK();
  }

  /// One multi-pass merge level: consecutive groups of kMergeFanIn runs
  /// collapse into single runs, preserving run order end to end.
  Status MergePass() {
    std::vector<std::unique_ptr<SpillFile>> next;
    for (size_t i = 0; i < runs_.size(); i += kMergeFanIn) {
      if (ctx_ != nullptr) STARBURST_RETURN_IF_ERROR(ctx_->CheckCancel());
      size_t end = std::min(runs_.size(), i + kMergeFanIn);
      if (end - i == 1) {
        next.push_back(std::move(runs_[i]));
        continue;
      }
      RunMerger merger(&keys_);
      STARBURST_RETURN_IF_ERROR(merger.Init(runs_, i, end));
      STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile> out,
                                 SpillFile::Create());
      RowBatch scratch(batch_size_);
      while (true) {
        scratch.Clear();
        while (!scratch.full()) {
          Row* slot = scratch.AppendSlot();
          STARBURST_ASSIGN_OR_RETURN(bool more, merger.Next(slot));
          if (!more) {
            scratch.PopLast();
            break;
          }
        }
        if (scratch.empty()) break;
        STARBURST_RETURN_IF_ERROR(out->AppendBatch(scratch));
      }
      STARBURST_RETURN_IF_ERROR(out->Finish());
      StatSpill(1, out->bytes_written());
      for (size_t j = i; j < end; ++j) runs_[j].reset();
      next.push_back(std::move(out));
    }
    runs_ = std::move(next);
    return Status::OK();
  }

  OperatorPtr input_;
  SortKeys keys_;
  uint64_t budget_;
  ExecContext* ctx_ = nullptr;
  MemoryTracker tracker_;
  size_t batch_size_ = RowBatch::kDefaultCapacity;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  std::vector<std::unique_ptr<SpillFile>> runs_;
  std::unique_ptr<RunMerger> merger_;
};

/// DISTINCT with grace-partitioned overflow. Within budget it streams
/// first-seen rows exactly as before. When the seen-set tips past budget
/// it freezes: resident keys keep deduplicating inline, unseen rows
/// scatter to hash partitions on temp storage. After the input drains,
/// partitions are deduplicated one at a time (their key sets are disjoint
/// from the frozen set and from each other); a partition that itself
/// overflows re-partitions at depth+1 under a re-salted hash.
class DistinctOp : public Operator {
 public:
  DistinctOp(OperatorPtr input, uint64_t budget)
      : input_(std::move(input)), budget_(budget) {}

  static constexpr size_t kPartitions = 16;
  /// Each recursion level retains at least one key in memory, so depth
  /// only grows on pathological budgets; past the cap we stop governing
  /// rather than thrash.
  static constexpr int kMaxDepth = 32;

  Status OpenImpl(ExecContext* ctx) override {
    DropState();
    ctx_ = ctx;
    tracker_.Configure(budget_, ctx->query_memory());
    batch_size_ = ctx->batch_size();
    scratch_.Reset(batch_size_);
    scratch_pos_ = 0;
    return input_->Open(ctx);
  }

  Result<bool> NextImpl(Row* row) override {
    if (scratch_pos_ >= scratch_.size()) {
      scratch_.Clear();
      STARBURST_ASSIGN_OR_RETURN(bool more, NextBatchImpl(&scratch_));
      if (!more) return false;
      scratch_pos_ = 0;
    }
    *row = scratch_.row(scratch_pos_++);
    return true;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    while (input_phase_) {
      STARBURST_RETURN_IF_ERROR(ctx_->CheckCancel());
      STARBURST_ASSIGN_OR_RETURN(bool more, input_->NextBatch(batch));
      if (!more) {
        STARBURST_RETURN_IF_ERROR(FinishInputPhase());
        break;
      }
      std::vector<uint32_t> keep;
      size_t n = batch->size();
      keep.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const Row& r = batch->row(i);
        if (seen_.find(r) != seen_.end()) continue;
        if (!frozen_) {
          tracker_.Reserve(r.MemoryBytes());
          seen_.insert(r);
          keep.push_back(static_cast<uint32_t>(batch->physical_index(i)));
          if (tracker_.over_budget()) frozen_ = true;
        } else {
          STARBURST_RETURN_IF_ERROR(SpillRow(r, 0, &partitions_));
        }
      }
      batch->SetSelection(std::move(keep));
      if (!batch->empty()) return true;
    }
    while (true) {
      if (FillBatchFromRows(emit_, &emit_pos_, batch)) return true;
      if (pending_.empty()) return false;
      STARBURST_RETURN_IF_ERROR(ProcessNextPartition());
    }
  }

  void CloseImpl() override {
    input_->Close();
    DropState();
  }

 private:
  struct Pending {
    std::unique_ptr<SpillFile> file;
    int depth = 0;
  };
  using Parts = std::array<std::unique_ptr<SpillFile>, kPartitions>;

  void DropState() {
    seen_.clear();
    for (auto& p : partitions_) p.reset();
    pending_.clear();
    emit_.clear();
    emit_pos_ = 0;
    frozen_ = false;
    input_phase_ = true;
    tracker_.Reset();
  }

  Status SpillRow(const Row& row, int depth, Parts* parts) {
    auto& slot = (*parts)[PartitionHash(row, depth) % kPartitions];
    if (slot == nullptr) {
      STARBURST_ASSIGN_OR_RETURN(slot, SpillFile::Create());
    }
    return slot->AppendRow(row);
  }

  /// Input drained: the frozen set has already streamed out, so release
  /// it (spilled keys are disjoint from it by the freeze discipline) and
  /// queue the partition files for deduplication.
  Status FinishInputPhase() {
    input_phase_ = false;
    StatPeakMemory(tracker_.peak());
    seen_.clear();
    tracker_.Reset();
    for (auto& p : partitions_) {
      if (p == nullptr) continue;
      STARBURST_RETURN_IF_ERROR(p->Finish());
      StatSpill(1, p->bytes_written());
      pending_.push_back(Pending{std::move(p), 1});
    }
    return Status::OK();
  }

  /// Dedups one spilled partition into the emit buffer; overflow rows
  /// re-partition at the next depth and requeue.
  Status ProcessNextPartition() {
    STARBURST_RETURN_IF_ERROR(ctx_->CheckCancel());
    Pending part = std::move(pending_.front());
    pending_.pop_front();
    STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile::Reader> reader,
                               part.file->OpenReader());
    Parts subs;
    bool frozen = false;
    Row row;
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, reader->NextRow(&row));
      if (!more) break;
      if (seen_.find(row) != seen_.end()) continue;
      if (!frozen) {
        tracker_.Reserve(row.MemoryBytes());
        seen_.insert(std::move(row));
        if (tracker_.over_budget() && part.depth < kMaxDepth) frozen = true;
      } else {
        STARBURST_RETURN_IF_ERROR(SpillRow(row, part.depth, &subs));
      }
    }
    for (auto& s : subs) {
      if (s == nullptr) continue;
      STARBURST_RETURN_IF_ERROR(s->Finish());
      StatSpill(1, s->bytes_written());
      pending_.push_back(Pending{std::move(s), part.depth + 1});
    }
    emit_.clear();
    emit_pos_ = 0;
    emit_.reserve(seen_.size());
    while (!seen_.empty()) {
      emit_.push_back(std::move(seen_.extract(seen_.begin()).value()));
    }
    StatPeakMemory(tracker_.peak());
    tracker_.Reset();
    return Status::OK();
  }

  OperatorPtr input_;
  uint64_t budget_;
  ExecContext* ctx_ = nullptr;
  MemoryTracker tracker_;
  size_t batch_size_ = RowBatch::kDefaultCapacity;
  std::unordered_set<Row, RowHash> seen_;
  bool frozen_ = false;
  bool input_phase_ = true;
  Parts partitions_;
  std::deque<Pending> pending_;
  std::vector<Row> emit_;
  size_t emit_pos_ = 0;
  RowBatch scratch_;  // NextImpl row-compat staging
  size_t scratch_pos_ = 0;
};

}  // namespace

OperatorPtr MakeSortOp(OperatorPtr input,
                       std::vector<std::pair<size_t, bool>> keys,
                       uint64_t memory_budget_bytes) {
  return std::make_unique<SortOp>(std::move(input), std::move(keys),
                                  memory_budget_bytes);
}

OperatorPtr MakeDistinctOp(OperatorPtr input, uint64_t memory_budget_bytes) {
  return std::make_unique<DistinctOp>(std::move(input), memory_budget_bytes);
}

}  // namespace starburst::exec
