// OBS — observability tax: what do the tracer and per-operator stats
// cost, and (the design requirement) is the *disabled* path free?
//
// The span recorder and the operator-stats shims are woven through the
// Figure-1 pipeline and every LOLEPOP's Open/Next/Close. Both are built
// to be branch-cheap when off: the tracer checks one relaxed atomic per
// span, and each operator call tests a single `stats_ == nullptr`
// pointer before dispatching to the untimed virtual. This bench runs
// the same query mix from the Figure-1 phase bench in three
// configurations and reports the overhead relative to baseline:
//
//   off        tracer disabled, no op stats   (the default; target <5%)
//   trace      tracer enabled (phase spans + rule-firing instants)
//   trace+ops  tracer enabled and per-operator stats collected
//
// Per-operator stats are the expensive knob by construction — two clock
// reads per Next() on every operator — which is why EXPLAIN ANALYZE and
// \timing opt into them per query instead of leaving them on.

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

double RunMix(Database* db, const std::vector<std::string>& queries,
              int reps) {
  return MedianUs(
      [&] {
        for (const std::string& sql : queries) {
          MustRows(db, sql);
        }
      },
      reps);
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("trace_overhead", argc, argv);

  Database db;
  for (int t = 1; t <= 4; ++t) {
    MakeIntTable(&db, "t" + std::to_string(t), 1000, 50,
                 static_cast<uint32_t>(100 + t));
  }
  if (!db.AnalyzeAll().ok()) return 1;
  // The tracer's phase spans and rule-firing instants live in the
  // compile half; a plan-cache hit would skip the very code being
  // measured.
  MustExec(&db, "SET PLAN_CACHE_SIZE = 0");

  // The Figure-1 bench's query shapes: a scan+filter, a 3-way chained
  // join, and the nested (rewrite-exercising) variant.
  std::vector<std::string> queries = {
      "SELECT k, v FROM t1 WHERE v < 25",
      "SELECT t1.k FROM t1, t2, t3 WHERE t1.v < 25 AND t1.k = t2.k "
      "AND t2.k = t3.k",
      "SELECT k FROM t1 WHERE v < 10 AND k IN "
      "(SELECT k FROM t2 WHERE t2.v = t1.v)",
  };

  const int reps = 9;
  // Warm up caches and the buffer pool before timing anything.
  RunMix(&db, queries, 1);

  db.tracer().set_enabled(false);
  db.options().collect_op_stats = false;
  double off_us = RunMix(&db, queries, reps);

  db.tracer().set_enabled(true);
  double trace_us = RunMix(&db, queries, reps);

  db.options().collect_op_stats = true;
  double both_us = RunMix(&db, queries, reps);

  db.tracer().set_enabled(false);
  db.options().collect_op_stats = false;
  double off2_us = RunMix(&db, queries, reps);

  // Baseline = the better of the two disabled runs, which absorbs
  // one-sided warmup drift.
  double base_us = std::min(off_us, off2_us);
  std::printf("OBS: tracer / op-stats overhead on the Figure-1 query mix\n");
  std::printf("%-12s %12s %10s\n", "config", "median(us)", "vs off");
  std::printf("%-12s %12.0f %9s\n", "off", base_us, "--");
  std::printf("%-12s %12.0f %+9.1f%%\n", "trace", trace_us,
              100.0 * (trace_us - base_us) / base_us);
  std::printf("%-12s %12.0f %+9.1f%%\n", "trace+ops", both_us,
              100.0 * (both_us - base_us) / base_us);

  double rerun_drift = 100.0 * (off2_us - off_us) / off_us;
  std::printf("\n(disabled-path drift between first and last 'off' runs: "
              "%+.1f%% — the noise floor for the <5%% target)\n", rerun_drift);

  json.Add("off", {}, base_us / 1e3, 0);
  json.Add("trace", {}, trace_us / 1e3, 0);
  json.Add("trace_ops", {}, both_us / 1e3, 0);
  return 0;
}
