#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "engine/database.h"
#include "obs/op_stats.h"
#include "storage/spill_file.h"

namespace starburst {
namespace {

// ---------------------------------------------------------------------------
// MemoryTracker
// ---------------------------------------------------------------------------

TEST(MemoryTrackerTest, ReserveReleasePeakAndBudget) {
  MemoryTracker t(100, nullptr);
  EXPECT_FALSE(t.over_budget());
  t.Reserve(60);
  EXPECT_EQ(t.used(), 60u);
  EXPECT_EQ(t.peak(), 60u);
  EXPECT_FALSE(t.over_budget());
  t.Reserve(60);
  EXPECT_TRUE(t.over_budget());  // 120 > 100
  EXPECT_EQ(t.peak(), 120u);
  t.Release(100);
  EXPECT_EQ(t.used(), 20u);
  EXPECT_FALSE(t.over_budget());
  EXPECT_EQ(t.peak(), 120u);  // high-water mark sticks
  t.Reset();
  EXPECT_EQ(t.used(), 0u);
  EXPECT_EQ(t.peak(), 0u);
}

TEST(MemoryTrackerTest, UnlimitedStillCounts) {
  MemoryTracker t;  // budget 0 = unlimited
  t.Reserve(1 << 30);
  EXPECT_FALSE(t.over_budget());
  EXPECT_EQ(t.peak(), static_cast<uint64_t>(1 << 30));
}

TEST(MemoryTrackerTest, ParentChainGoverns) {
  // The query tracker caps the *sum* of its children: a child with no
  // budget of its own still reports over_budget when the parent tips.
  MemoryTracker query(100, nullptr);
  MemoryTracker op_a(0, &query);
  MemoryTracker op_b(0, &query);
  op_a.Reserve(70);
  op_b.Reserve(70);
  EXPECT_TRUE(op_a.over_budget());
  EXPECT_TRUE(op_b.over_budget());
  EXPECT_EQ(query.used(), 140u);
  op_a.Reset();  // releases its share from the parent
  EXPECT_EQ(query.used(), 70u);
  EXPECT_FALSE(op_b.over_budget());
}

// ---------------------------------------------------------------------------
// SpillFile
// ---------------------------------------------------------------------------

Row MixedRow(int64_t i) {
  return Row({Value::Int(i), Value::String("payload-" + std::to_string(i)),
              i % 3 == 0 ? Value::Null() : Value::Double(i * 0.5)});
}

TEST(SpillFileTest, RoundTripsRowsAndBatches) {
  uint64_t live_before = SpillFile::live_count();
  {
    Result<std::unique_ptr<SpillFile>> created = SpillFile::Create();
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    std::unique_ptr<SpillFile> file = created.TakeValue();
    EXPECT_EQ(SpillFile::live_count(), live_before + 1);

    RowBatch batch(4);
    for (int64_t i = 0; i < 3; ++i) *batch.AppendSlot() = MixedRow(i);
    ASSERT_TRUE(file->AppendBatch(batch).ok());
    ASSERT_TRUE(file->AppendRow(MixedRow(3)).ok());
    ASSERT_TRUE(file->Finish().ok());
    EXPECT_EQ(file->rows_written(), 4u);
    EXPECT_GT(file->bytes_written(), 0u);

    // Two independent readers must both see the full sequence.
    for (int pass = 0; pass < 2; ++pass) {
      Result<std::unique_ptr<SpillFile::Reader>> r = file->OpenReader();
      ASSERT_TRUE(r.ok());
      Row row;
      for (int64_t i = 0; i < 4; ++i) {
        Result<bool> more = (*r)->NextRow(&row);
        ASSERT_TRUE(more.ok() && *more);
        EXPECT_EQ(row, MixedRow(i));
      }
      Result<bool> end = (*r)->NextRow(&row);
      ASSERT_TRUE(end.ok());
      EXPECT_FALSE(*end);
    }
  }
  // Destruction unlinks: the cleanup contract spill consumers rely on.
  EXPECT_EQ(SpillFile::live_count(), live_before);
}

TEST(SpillFileTest, BatchReaderHonoursFillLimit) {
  Result<std::unique_ptr<SpillFile>> created = SpillFile::Create();
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SpillFile> file = created.TakeValue();
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(file->AppendRow(MixedRow(i)).ok());
  }
  ASSERT_TRUE(file->Finish().ok());
  Result<std::unique_ptr<SpillFile::Reader>> r = file->OpenReader();
  ASSERT_TRUE(r.ok());
  RowBatch batch(4);
  size_t seen = 0;
  while (true) {
    batch.Clear();
    Result<bool> more = (*r)->NextBatch(&batch);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ASSERT_LE(batch.size(), 4u);
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch.row(i), MixedRow(static_cast<int64_t>(seen + i)));
    }
    seen += batch.size();
  }
  EXPECT_EQ(seen, 10u);
}

// ---------------------------------------------------------------------------
// Differential corpus: serial == batched == spilled
// ---------------------------------------------------------------------------

class SpillQueryTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 12000;

  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE t (id INT, k INT, grp INT, payload STRING)")
            .ok());
    // Duplicate sort keys (k cycles mod 53), periodic NULL keys, and a
    // payload that records insertion order — enough bulk that a 64 KiB
    // budget is over 10x oversubscribed.
    std::string insert;
    for (int i = 0; i < kRows; ++i) {
      if (insert.empty()) {
        insert = "INSERT INTO t VALUES ";
      } else {
        insert += ",";
      }
      std::string k = i % 97 == 0 ? "NULL" : std::to_string(i % 53);
      insert += "(" + std::to_string(i) + "," + k + "," +
                std::to_string(i % 400) + ",'pay-" + std::to_string(i) +
                "-xxxxxxxxxxxxxxxx')";
      if (insert.size() > 30000 || i == kRows - 1) {
        ASSERT_TRUE(db_.Execute(insert).ok());
        insert.clear();
      }
    }
  }

  std::vector<Row> Q(const std::string& sql) {
    Result<std::vector<Row>> rows = db_.Query(sql);
    EXPECT_TRUE(rows.ok()) << sql << ": " << rows.status().ToString();
    return rows.ok() ? rows.TakeValue() : std::vector<Row>{};
  }

  void Set(const std::string& stmt) {
    Result<ResultSet> rs = db_.Execute(stmt);
    ASSERT_TRUE(rs.ok()) << stmt << ": " << rs.status().ToString();
  }

  static std::vector<Row> Sorted(std::vector<Row> rows) {
    std::sort(rows.begin(), rows.end(), RowTotalLess{});
    return rows;
  }

  // Sums spill counters over the last EXPLAIN ANALYZE's stats tree.
  void SumSpill(uint64_t* runs, uint64_t* bytes, uint64_t* peak) {
    *runs = *bytes = *peak = 0;
    std::shared_ptr<const obs::PlanStatsTree> tree =
        db_.last_metrics().op_stats;
    ASSERT_NE(tree, nullptr);
    std::vector<const obs::PlanStatsTree::Node*> stack(tree->roots().begin(),
                                                       tree->roots().end());
    while (!stack.empty()) {
      const obs::PlanStatsTree::Node* node = stack.back();
      stack.pop_back();
      *runs += node->actual.spill_runs.load();
      *bytes += node->actual.spill_bytes.load();
      *peak += node->actual.peak_memory_bytes.load();
      stack.insert(stack.end(), node->children.begin(), node->children.end());
    }
  }

  Database db_;
};

TEST_F(SpillQueryTest, OrderByIsDeterministicAcrossBudgets) {
  // Serial reference: unlimited in-memory stable sort.
  Set("SET PARALLELISM = 1");
  Set("SET SORT_MEMORY = DEFAULT");
  const std::string query = "SELECT k, payload FROM t ORDER BY k";
  std::vector<Row> reference = Q(query);
  ASSERT_EQ(reference.size(), static_cast<size_t>(kRows));
  // NULL keys sort first.
  EXPECT_TRUE(reference[0][0].is_null());

  for (const char* budget : {"64 KB", "1 MB"}) {
    Set(std::string("SET SORT_MEMORY = ") + budget);
    // Spilled runs merge back to the byte-identical sequence — same
    // tie-breaking for duplicate keys, same NULL placement.
    EXPECT_EQ(Q(query), reference) << "budget " << budget;
  }
  Set("SET SORT_MEMORY = DEFAULT");
}

TEST_F(SpillQueryTest, DifferentialCorpusAcrossBudgetsAndParallelism) {
  const char* queries[] = {
      "SELECT k, payload FROM t ORDER BY k",
      "SELECT grp, COUNT(*), SUM(k) FROM t GROUP BY grp",
      "SELECT DISTINCT k, grp FROM t",
  };
  Set("SET PARALLELISM = 1");
  Set("SET SORT_MEMORY = DEFAULT");
  Set("SET AGG_MEMORY = DEFAULT");
  std::vector<std::vector<Row>> reference;
  for (const char* q : queries) reference.push_back(Sorted(Q(q)));
  ASSERT_EQ(reference[1].size(), 400u);

  for (const char* budget : {"64 KB", "1 MB", "DEFAULT"}) {
    for (int parallelism : {1, 4}) {
      Set(std::string("SET SORT_MEMORY = ") + budget);
      Set(std::string("SET AGG_MEMORY = ") + budget);
      Set("SET PARALLELISM = " + std::to_string(parallelism));
      for (size_t qi = 0; qi < 3; ++qi) {
        EXPECT_EQ(Sorted(Q(queries[qi])), reference[qi])
            << queries[qi] << " budget=" << budget
            << " parallelism=" << parallelism;
      }
    }
  }
}

TEST_F(SpillQueryTest, BatchSizeOneMatchesVectorized) {
  Set("SET PARALLELISM = 1");
  Set("SET SORT_MEMORY = 64 KB");
  Set("SET AGG_MEMORY = 64 KB");
  const std::string sort_q = "SELECT k, payload FROM t ORDER BY k";
  const std::string agg_q =
      "SELECT grp, COUNT(*), SUM(k) FROM t GROUP BY grp";
  std::vector<Row> sort_ref = Q(sort_q);
  std::vector<Row> agg_ref = Sorted(Q(agg_q));
  Set("SET BATCH_SIZE = 1");
  EXPECT_EQ(Q(sort_q), sort_ref);  // exact order, row-at-a-time
  EXPECT_EQ(Sorted(Q(agg_q)), agg_ref);
  Set("SET BATCH_SIZE = DEFAULT");
}

TEST_F(SpillQueryTest, QueryMemoryBudgetForcesSpill) {
  // Operator budgets stay unlimited; the query-wide cap alone must
  // trigger spilling, visible through the operator stats.
  Set("SET PARALLELISM = 1");
  Set("SET QUERY_MEMORY = 64 KB");
  std::vector<Row> rows = Q("SELECT k, payload FROM t ORDER BY k");
  ASSERT_EQ(rows.size(), static_cast<size_t>(kRows));
  Set("SET QUERY_MEMORY = DEFAULT");
  Set("SET SORT_MEMORY = DEFAULT");

  ASSERT_TRUE(
      db_.Execute("EXPLAIN ANALYZE SELECT k FROM t ORDER BY k").ok());
  // With everything unlimited again, no spill is reported...
  uint64_t runs = 0, bytes = 0, peak = 0;
  SumSpill(&runs, &bytes, &peak);
  EXPECT_EQ(runs, 0u);
  EXPECT_GT(peak, 0u);  // ...but the peak reservation is still tracked.

  Set("SET QUERY_MEMORY = 64 KB");
  ASSERT_TRUE(
      db_.Execute("EXPLAIN ANALYZE SELECT k FROM t ORDER BY k").ok());
  SumSpill(&runs, &bytes, &peak);
  EXPECT_GT(runs, 0u);
  EXPECT_GT(bytes, 0u);
  Set("SET QUERY_MEMORY = DEFAULT");
}

TEST_F(SpillQueryTest, ExplainAnalyzeShowsSpillColumns) {
  Set("SET PARALLELISM = 1");
  Set("SET SORT_MEMORY = 64 KB");
  Set("SET AGG_MEMORY = 64 KB");
  Result<ResultSet> rs = db_.Execute(
      "EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM t GROUP BY grp "
      "ORDER BY grp");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  std::string text;
  for (const Row& r : rs->rows()) text += r[0].string_value() + "\n";
  EXPECT_NE(text.find("mem peak="), std::string::npos) << text;
  EXPECT_NE(text.find("spill runs="), std::string::npos) << text;
  EXPECT_NE(text.find("spilled="), std::string::npos) << text;
  EXPECT_EQ(text.find("spill runs=0"), std::string::npos) << text;
  // A spilling operator must report its true high-water mark, not the
  // post-spill residue (the run-cut path resets the tracker).
  EXPECT_EQ(text.find("mem peak=0.0KiB"), std::string::npos) << text;
  Set("SET SORT_MEMORY = DEFAULT");
  Set("SET AGG_MEMORY = DEFAULT");
}

// ---------------------------------------------------------------------------
// Cleanup on error / cancel
// ---------------------------------------------------------------------------

TEST_F(SpillQueryTest, SpillFilesUnlinkedOnQueryError) {
  Set("SET PARALLELISM = 1");
  Set("SET SORT_MEMORY = 64 KB");
  uint64_t live_before = SpillFile::live_count();
  // The projected expression divides by zero near the end of the input,
  // long after the sort build has cut spill runs: the error must unwind
  // through Close and unlink every temp file.
  Result<std::vector<Row>> rows = db_.Query(
      "SELECT k, payload, 100 / (id - 11000) FROM t ORDER BY k");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(SpillFile::live_count(), live_before);
  Set("SET SORT_MEMORY = DEFAULT");
}

TEST_F(SpillQueryTest, SpillFilesUnlinkedOnEarlyLimitClose) {
  Set("SET PARALLELISM = 1");
  Set("SET SORT_MEMORY = 64 KB");
  uint64_t live_before = SpillFile::live_count();
  // LIMIT abandons the merge mid-stream: the sort still holds open runs
  // and readers when the tree closes.
  std::vector<Row> rows = Q("SELECT k, payload FROM t ORDER BY k LIMIT 5");
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_EQ(SpillFile::live_count(), live_before);
  Set("SET SORT_MEMORY = DEFAULT");
}

// ---------------------------------------------------------------------------
// Knob parsing
// ---------------------------------------------------------------------------

TEST(SpillKnobTest, MemoryKnobsParseUnitsAndDefault) {
  Database db;
  Result<ResultSet> rs = db.Execute("SET SORT_MEMORY = 64 KB");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->message(), "SET SORT_MEMORY = 65536");
  rs = db.Execute("SET AGG_MEMORY = 2 MB");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->message(), "SET AGG_MEMORY = 2097152");
  rs = db.Execute("SET QUERY_MEMORY = 1 GB");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->message(), "SET QUERY_MEMORY = 1073741824");
  rs = db.Execute("SET QUERY_MEMORY = DEFAULT");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->message(), "SET QUERY_MEMORY = 0");
  EXPECT_FALSE(db.Execute("SET SORT_MEMORY = -1").ok());
}

}  // namespace
}  // namespace starburst
