file(REMOVE_RECURSE
  "libstarburst_engine.a"
)
