// An interactive Hydrogen shell over the embedded engine — the artifact a
// downstream user reaches for first. Reads ';'-terminated statements from
// stdin; `\timing` toggles the Figure-1 phase report, `\trace` (or
// `.trace`) drives the span recorder, `\q` quits.
//
//   ./example_repl            # interactive
//   ./example_repl < file.sql # batch

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "ext/extensions.h"

using starburst::Database;
using starburst::Result;
using starburst::ResultSet;
using starburst::Value;

namespace {

/// Parses one `\exec` argument into a parameter value: NULL, an integer,
/// a double, or (with or without surrounding single quotes) a string.
Value ParseParamValue(const std::string& token) {
  if (token == "NULL" || token == "null") return Value::Null();
  if (token.size() >= 2 && token.front() == '\'' && token.back() == '\'') {
    return Value::String(token.substr(1, token.size() - 2));
  }
  try {
    size_t used = 0;
    long long i = std::stoll(token, &used);
    if (used == token.size()) return Value::Int(i);
    double d = std::stod(token, &used);
    if (used == token.size()) return Value::Double(d);
  } catch (...) {
  }
  return Value::String(token);
}

void PrintResult(const ResultSet& result);

/// Handles one meta command (without its leading '\' or '.'); returns
/// false for \q.
bool RunMetaCommand(const std::string& cmd, Database* db, bool* timing,
                    std::map<std::string, Database::PreparedHandle>* prepared) {
  std::istringstream in(cmd);
  std::string word, arg1, arg2;
  in >> word;
  if (word == "prepare") {
    // \prepare <name> <SELECT ... with ? markers>
    in >> arg1;
    std::string sql;
    std::getline(in, sql);
    if (arg1.empty() || sql.find_first_not_of(" \t") == std::string::npos) {
      std::printf("usage: \\prepare <name> <select statement>\n");
      return true;
    }
    Result<Database::PreparedHandle> handle = db->Prepare(sql);
    if (!handle.ok()) {
      std::printf("ERROR: %s\n", handle.status().ToString().c_str());
      return true;
    }
    (*prepared)[arg1] = *handle;
    std::printf("prepared '%s' (%zu parameter%s)\n", arg1.c_str(),
                (*handle)->num_params,
                (*handle)->num_params == 1 ? "" : "s");
    return true;
  }
  if (word == "exec") {
    // \exec <name> [value ...] — NULL, numbers, and 'strings' bind to
    // the statement's ? markers in order.
    in >> arg1;
    if (arg1.empty()) {
      std::printf("usage: \\exec <name> [value ...]\n");
      return true;
    }
    auto it = prepared->find(arg1);
    if (it == prepared->end()) {
      std::printf("no prepared statement '%s'\n", arg1.c_str());
      return true;
    }
    std::vector<Value> params;
    std::string token;
    while (in >> token) params.push_back(ParseParamValue(token));
    Result<ResultSet> result = db->ExecutePrepared(it->second, params);
    if (!result.ok()) {
      std::printf("ERROR: %s\n", result.status().ToString().c_str());
      return true;
    }
    PrintResult(*result);
    return true;
  }
  in >> arg1 >> arg2;
  if (word == "q" || word == "quit") return false;
  if (word == "timing") {
    *timing = !*timing;
    // Per-operator stats power the top-operators report; collect them
    // only while timing is on.
    db->options().collect_op_stats = *timing;
    std::printf("timing %s\n", *timing ? "on" : "off");
    return true;
  }
  if (word == "trace") {
    if (arg1 == "on" || arg1 == "off") {
      db->tracer().set_enabled(arg1 == "on");
      if (arg1 == "on") db->tracer().Clear();
      std::printf("trace %s\n", arg1.c_str());
    } else if (arg1 == "show") {
      std::printf("trace: capacity %zu, %llu dropped\n",
                  db->tracer().capacity(),
                  static_cast<unsigned long long>(db->tracer().dropped()));
      std::printf("%s", db->tracer().ToText().c_str());
    } else if (arg1 == "export" && !arg2.empty()) {
      std::ofstream out(arg2);
      if (!out) {
        std::printf("cannot open %s\n", arg2.c_str());
      } else {
        out << db->tracer().ToChromeJson();
        std::printf("trace written to %s (load in chrome://tracing or "
                    "ui.perfetto.dev)\n", arg2.c_str());
      }
    } else {
      std::printf("usage: \\trace on|off|show|export <file>\n");
    }
    return true;
  }
  if (word == "metrics") {
    // Prometheus-style exposition of every engine metric, mirrors
    // refreshed first so the numbers are current.
    db->RefreshMetricsMirrors();
    std::printf("%s", db->metrics_registry().RenderText().c_str());
    return true;
  }
  if (word == "querylog") {
    std::vector<starburst::obs::QueryLogEntry> entries =
        db->query_log().Snapshot();
    std::printf("query log: %llu total, %llu dropped, %llu cleared "
                "(SET SLOW_QUERY_US = <n> flags slow statements)\n",
                static_cast<unsigned long long>(db->query_log().total()),
                static_cast<unsigned long long>(db->query_log().dropped()),
                static_cast<unsigned long long>(db->query_log().cleared()));
    for (const starburst::obs::QueryLogEntry& e : entries) {
      std::printf("#%llu [%s]%s%s %llu rows, %llu us%s: %s\n",
                  static_cast<unsigned long long>(e.id), e.status.c_str(),
                  e.plan_cache_hit ? " [cached]" : "",
                  e.slow ? " [SLOW]" : "",
                  static_cast<unsigned long long>(e.rows),
                  static_cast<unsigned long long>(e.total_us),
                  e.parallelism > 1
                      ? (" (dop " + std::to_string(e.parallelism) + ")").c_str()
                      : "",
                  e.sql.c_str());
      if (!e.error.empty()) std::printf("    error: %s\n", e.error.c_str());
    }
    return true;
  }
  std::printf("unknown meta command: %s\n", cmd.c_str());
  return true;
}

void PrintResult(const ResultSet& result) {
  if (!result.rows().empty() && result.column_names().size() == 1 &&
      result.column_names()[0] == "plan") {
    std::printf("%s", result.rows()[0][0].string_value().c_str());
  } else if (!result.rows().empty() && result.column_names().size() == 1 &&
             result.column_names()[0] == "EXPLAIN") {
    // EXPLAIN ANALYZE report: one line per row, rendered verbatim.
    for (const starburst::Row& r : result.rows()) {
      std::printf("%s\n", r[0].string_value().c_str());
    }
  } else {
    std::printf("%s", result.ToString().c_str());
  }
}

void PrintTimingReport(const Database& db) {
  const starburst::QueryMetrics& m = db.last_metrics();
  std::printf("parse %.0f | bind %.0f | rewrite %.0f | optimize %.0f | "
              "refine %.0f | execute %.0f (us)%s\n",
              m.parse_us, m.bind_us, m.rewrite_us, m.optimize_us,
              m.refine_us, m.execute_us,
              m.plan_cache_hit ? " [plan cache hit]" : "");
  std::printf("  plan cache: %llu entries | hits %llu | misses %llu | "
              "invalidations %llu | evictions %llu\n",
              static_cast<unsigned long long>(m.plan_cache_entries),
              static_cast<unsigned long long>(m.plan_cache.hits),
              static_cast<unsigned long long>(m.plan_cache.misses),
              static_cast<unsigned long long>(m.plan_cache.invalidations),
              static_cast<unsigned long long>(m.plan_cache.evictions));
  for (const auto& f : m.rewrite_stats.firings) {
    std::printf("  rule %s box=%s [id=%d] pass=%d\n", f.rule.c_str(),
                f.box_label.c_str(), f.box_id, f.pass);
  }
  if (m.op_stats != nullptr) {
    std::vector<const starburst::obs::PlanStatsTree::Node*> top =
        m.op_stats->TopBySelfTime(3);
    for (size_t i = 0; i < top.size(); ++i) {
      std::printf("  top op %zu: %s — self %.1f us, %llu rows, %llu loops\n",
                  i + 1, top[i]->name.c_str(),
                  starburst::obs::PlanStatsTree::SelfUs(*top[i]),
                  static_cast<unsigned long long>(top[i]->actual.rows_out),
                  static_cast<unsigned long long>(top[i]->actual.opens));
    }
  }
}

}  // namespace

int main() {
  Database db;
  (void)starburst::ext::RegisterAllExtensions(&db);
  bool timing = false;
  bool tty = true;
  std::map<std::string, Database::PreparedHandle> prepared;

  std::printf(
      "Starburst/Corona shell — Hydrogen statements end with ';'\n"
      "meta: \\timing toggles phase timings (incl. plan-cache counters),\n"
      "      \\prepare <name> <select with ? markers> compiles once,\n"
      "      \\exec <name> [value ...] runs it with bound parameters,\n"
      "      \\trace on|off|show|export <file> drives the tracer,\n"
      "      \\metrics dumps engine counters (also: SELECT * FROM "
      "sys.metrics),\n"
      "      \\querylog shows recent statements (also: sys.query_log), \\q "
      "quits\n"
      "SET PLAN_CACHE_SIZE = <n> bounds the plan cache (0 disables)\n"
      "SET STATEMENT_TIMEOUT_MS / ADMISSION_MEMORY / ADMISSION_WAIT_MS "
      "govern statements;\n"
      "      KILL <id> cancels a live statement (ids: SELECT * FROM "
      "sys.statements)\n");

  std::string buffer;
  std::string line;
  while (true) {
    if (tty) std::printf(buffer.empty() ? "starburst> " : "      ...> ");
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() &&
        (line[0] == '\\' || line[0] == '.')) {
      if (!RunMetaCommand(line.substr(1), &db, &timing, &prepared)) break;
      continue;
    }

    buffer += line + "\n";
    // Execute once a ';' arrives (statements may span lines).
    if (buffer.find(';') == std::string::npos) continue;
    std::string sql = buffer;
    buffer.clear();
    if (sql.find_first_not_of(" \t\n;") == std::string::npos) continue;

    Result<ResultSet> result = db.Execute(sql);
    if (!result.ok()) {
      std::printf("ERROR: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result);
    if (timing) PrintTimingReport(db);
  }
  return 0;
}
