#ifndef STARBURST_EXEC_EXECUTOR_H_
#define STARBURST_EXEC_EXECUTOR_H_

#include "exec/plan_refiner.h"
#include "optimizer/optimizer.h"

namespace starburst::exec {

/// The Query Evaluation System's front door: refines a chosen plan into
/// an operator tree and interprets it against the database.
class Executor {
 public:
  struct Options {
    SubqueryCacheMode cache_mode = SubqueryCacheMode::kMemo;
    double ship_delay_us = 0;
    bool semi_naive_recursion = true;
    /// Optional sink for per-operator runtime stats (EXPLAIN ANALYZE).
    obs::PlanStatsTree* stats = nullptr;
    /// Worker count for morsel-driven parallel execution (1 = serial).
    /// Defaults to the hardware concurrency; SET PARALLELISM overrides.
    size_t parallelism = DefaultParallelism();
    /// Minimum estimated scanned rows before a subtree is parallelized.
    double parallel_min_rows = 1024;
    /// Rows per NextBatch call (SET BATCH_SIZE; 1 pins exact
    /// row-at-a-time behavior for differential testing).
    size_t batch_size = RowBatch::kDefaultCapacity;
    /// Per-operator build budgets (bytes, 0 = unlimited): past them a
    /// sort cuts spilled runs and an aggregation/DISTINCT grace-
    /// partitions new keys to temp storage (SET SORT_MEMORY /
    /// SET AGG_MEMORY).
    uint64_t sort_memory_bytes = 0;
    uint64_t agg_memory_bytes = 0;
    /// Query-wide cap over every governed operator's sum
    /// (SET QUERY_MEMORY; 0 = unlimited).
    uint64_t query_memory_bytes = 0;

    static size_t DefaultParallelism();
  };

  Executor(StorageEngine* storage, const Catalog* catalog)
      : storage_(storage), catalog_(catalog) {}

  /// Runs the plan to completion, honouring the query-level LIMIT
  /// recorded in the graph. `optimizer` supplies the per-box plans for
  /// correlated subquery runtimes.
  Result<std::vector<Row>> Execute(const optimizer::PlanPtr& plan,
                                   const optimizer::Optimizer& optimizer,
                                   const qgm::Graph& graph);
  Result<std::vector<Row>> Execute(const optimizer::PlanPtr& plan,
                                   const optimizer::Optimizer& optimizer,
                                   const qgm::Graph& graph,
                                   const Options& options);

  /// Stats from the most recent Execute.
  const ExecStats& last_stats() const { return last_stats_; }

 private:
  StorageEngine* storage_;
  const Catalog* catalog_;
  ExecStats last_stats_;
};

}  // namespace starburst::exec

#endif  // STARBURST_EXEC_EXECUTOR_H_
