#include <gtest/gtest.h>

#include "engine/database.h"
#include "ext/extensions.h"

namespace starburst {
namespace {

class ExtensionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ext::RegisterAllExtensions(&db_).ok());
  }

  bool Exec(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    if (!r.ok()) last_error_ = r.status().ToString();
    return r.ok();
  }

  std::vector<Row> MustQuery(const std::string& sql) {
    Result<std::vector<Row>> r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.TakeValue() : std::vector<Row>{};
  }

  Database db_;
  std::string last_error_;
};

// ---------------------------------------------------------------------------
// Externally-defined type + R-tree access method (§1, §2)
// ---------------------------------------------------------------------------

TEST_F(ExtensionTest, PointTypeEndToEnd) {
  ASSERT_TRUE(Exec("CREATE TABLE cities (name STRING, loc POINT)"))
      << last_error_;
  ASSERT_TRUE(Exec("INSERT INTO cities VALUES "
                   "('a', POINT(1, 1)), ('b', POINT(5, 5)), "
                   "('c', POINT(9.5, 2))"))
      << last_error_;
  std::vector<Row> rows = MustQuery(
      "SELECT name FROM cities WHERE CONTAINS(loc, 0, 0, 6, 6) "
      "ORDER BY name");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::String("a"));
  EXPECT_EQ(rows[1][0], Value::String("b"));

  rows = MustQuery("SELECT PX(loc), PY(loc) FROM cities WHERE name = 'c'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Double(9.5));

  rows = MustQuery(
      "SELECT DISTANCE(POINT(0, 0), POINT(3, 4))");
  EXPECT_EQ(rows[0][0], Value::Double(5.0));
}

TEST_F(ExtensionTest, RTreeIndexIsUsedByOptimizer) {
  ASSERT_TRUE(Exec("CREATE TABLE pts (id INT, loc POINT)"));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Exec("INSERT INTO pts VALUES (" + std::to_string(i) +
                     ", POINT(" + std::to_string(i % 20) + ", " +
                     std::to_string(i / 20) + "))"));
  }
  ASSERT_TRUE(Exec("CREATE INDEX pts_loc ON pts (loc) USING RTREE"))
      << last_error_;
  ASSERT_TRUE(db_.AnalyzeAll().ok());

  Result<ResultSet> explain = db_.Execute(
      "EXPLAIN PLAN SELECT id FROM pts WHERE CONTAINS(loc, 2, 2, 4, 4)");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  std::string plan = explain->rows()[0][0].string_value();
  EXPECT_NE(plan.find("RTREE_SCAN"), std::string::npos) << plan;

  // And the answers match a plain scan.
  std::vector<Row> indexed = MustQuery(
      "SELECT id FROM pts WHERE CONTAINS(loc, 2, 2, 4, 4) ORDER BY id");
  // Window [2,4]x[2,4]: x in {2,3,4} per row of 20, y in {2,3,4}.
  EXPECT_EQ(indexed.size(), 9u);
  std::vector<Row> scanned = MustQuery(
      "SELECT id FROM pts WHERE PX(loc) >= 2 AND PX(loc) <= 4 "
      "AND PY(loc) >= 2 AND PY(loc) <= 4 ORDER BY id");
  EXPECT_EQ(indexed, scanned);
}

TEST_F(ExtensionTest, RTreeMaintainedAcrossDeletes) {
  ASSERT_TRUE(Exec("CREATE TABLE pts (id INT, loc POINT)"));
  ASSERT_TRUE(Exec("INSERT INTO pts VALUES (1, POINT(1,1)), (2, POINT(2,2))"));
  ASSERT_TRUE(Exec("CREATE INDEX pts_loc ON pts (loc) USING RTREE"));
  ASSERT_TRUE(Exec("DELETE FROM pts WHERE id = 1"));
  std::vector<Row> rows =
      MustQuery("SELECT id FROM pts WHERE CONTAINS(loc, 0, 0, 3, 3)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(2));
}

TEST_F(ExtensionTest, RTreeRejectsNonPointColumns) {
  ASSERT_TRUE(Exec("CREATE TABLE t (a INT)"));
  EXPECT_FALSE(Exec("CREATE INDEX bad ON t (a) USING RTREE"));
}

// ---------------------------------------------------------------------------
// Table function (§2's SAMPLE)
// ---------------------------------------------------------------------------

TEST_F(ExtensionTest, SampleTableFunction) {
  ASSERT_TRUE(Exec("CREATE TABLE nums (n INT)"));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Exec("INSERT INTO nums VALUES (" + std::to_string(i) + ")"));
  }
  std::vector<Row> rows = MustQuery("SELECT n FROM SAMPLE(nums, 10) s");
  EXPECT_EQ(rows.size(), 10u);
  // Table functions compose like any table: aggregation over a sample.
  rows = MustQuery("SELECT COUNT(*) FROM SAMPLE(nums, 25) s WHERE n >= 0");
  EXPECT_EQ(rows[0][0], Value::Int(25));
  // A query (not just a name) as the table argument.
  rows = MustQuery(
      "SELECT COUNT(*) FROM SAMPLE(SELECT n FROM nums WHERE n < 50, 5) s");
  EXPECT_EQ(rows[0][0], Value::Int(5));
}

TEST_F(ExtensionTest, SampleValidatesArguments) {
  ASSERT_TRUE(Exec("CREATE TABLE nums (n INT)"));
  EXPECT_FALSE(Exec("SELECT n FROM SAMPLE(nums, 'ten') s"));
  EXPECT_FALSE(Exec("SELECT n FROM SAMPLE(nums, -1) s"));
}

// ---------------------------------------------------------------------------
// Aggregate extension (§2's StandardDeviation)
// ---------------------------------------------------------------------------

TEST_F(ExtensionTest, StddevAndVariance) {
  ASSERT_TRUE(Exec("CREATE TABLE xs (g STRING, x DOUBLE)"));
  ASSERT_TRUE(Exec("INSERT INTO xs VALUES "
                   "('a', 2.0), ('a', 4.0), ('a', 4.0), ('a', 4.0), "
                   "('a', 5.0), ('a', 5.0), ('a', 7.0), ('a', 9.0), "
                   "('b', 1.0)"));
  std::vector<Row> rows = MustQuery(
      "SELECT g, VARIANCE(x), STDDEV(x) FROM xs GROUP BY g ORDER BY g");
  ASSERT_EQ(rows.size(), 2u);
  // Sample variance of {2,4,4,4,5,5,7,9} = 32/7.
  EXPECT_NEAR(rows[0][1].double_value(), 32.0 / 7.0, 1e-9);
  EXPECT_NEAR(rows[0][2].double_value(),
              std::sqrt(32.0 / 7.0), 1e-9);
  // One value: sample stddev undefined -> NULL.
  EXPECT_TRUE(rows[1][1].is_null());
}

// ---------------------------------------------------------------------------
// Set predicate extension (§2's MAJORITY)
// ---------------------------------------------------------------------------

TEST_F(ExtensionTest, MajoritySetPredicate) {
  ASSERT_TRUE(Exec("CREATE TABLE salaries (dept STRING, amount INT)"));
  ASSERT_TRUE(Exec("INSERT INTO salaries VALUES "
                   "('eng', 100), ('eng', 120), ('eng', 90), "
                   "('hr', 50), ('hr', 60)"));
  // 105 > majority of {100,120,90,50,60}? greater than 100,90,50,60 = 4/5.
  std::vector<Row> rows = MustQuery(
      "SELECT 1 WHERE 105 > MAJORITY (SELECT amount FROM salaries)");
  EXPECT_EQ(rows.size(), 1u);
  // 55 > majority? greater than 50 only = 1/5.
  rows = MustQuery(
      "SELECT 1 WHERE 55 > MAJORITY (SELECT amount FROM salaries)");
  EXPECT_EQ(rows.size(), 0u);
  // Correlated use inside a real query.
  rows = MustQuery(
      "SELECT DISTINCT dept FROM salaries s WHERE 100 >= MAJORITY "
      "(SELECT amount FROM salaries t WHERE t.dept = s.dept) ORDER BY dept");
  ASSERT_EQ(rows.size(), 2u);  // eng: 100>=100,90 (2/3) ; hr: both
}

// ---------------------------------------------------------------------------
// Outer-join extension rule (§4/§5 worked example)
// ---------------------------------------------------------------------------

TEST_F(ExtensionTest, OuterJoinSimplifiedByNullRejectingPredicate) {
  ASSERT_TRUE(Exec("CREATE TABLE l (a INT)"));
  ASSERT_TRUE(Exec("CREATE TABLE r (a INT, v INT)"));
  ASSERT_TRUE(Exec("INSERT INTO l VALUES (1), (2), (3)"));
  ASSERT_TRUE(Exec("INSERT INTO r VALUES (1, 10), (2, 20)"));

  // v > 0 rejects the null-padded rows: the rewrite demotes PF to F and
  // merges — EXPLAIN QGM shows a single select box without PF.
  Result<ResultSet> explain = db_.Execute(
      "EXPLAIN QGM SELECT l.a, r.v FROM l LEFT OUTER JOIN r ON l.a = r.a "
      "WHERE r.v > 0");
  ASSERT_TRUE(explain.ok());
  std::string qgm = explain->rows()[0][0].string_value();
  EXPECT_EQ(qgm.find("PF over"), std::string::npos) << qgm;

  // Answers equal the inner join.
  std::vector<Row> outer_q = MustQuery(
      "SELECT l.a, r.v FROM l LEFT OUTER JOIN r ON l.a = r.a "
      "WHERE r.v > 0 ORDER BY a");
  std::vector<Row> inner_q = MustQuery(
      "SELECT l.a, r.v FROM l, r WHERE l.a = r.a AND r.v > 0 ORDER BY a");
  EXPECT_EQ(outer_q, inner_q);
  EXPECT_EQ(outer_q.size(), 2u);

  // Without a null-rejecting predicate the PF stays.
  Result<ResultSet> keep = db_.Execute(
      "EXPLAIN QGM SELECT l.a, r.v FROM l LEFT OUTER JOIN r ON l.a = r.a");
  ASSERT_TRUE(keep.ok());
  EXPECT_NE(keep->rows()[0][0].string_value().find("PF over"),
            std::string::npos);
}

TEST_F(ExtensionTest, PredicatePushdownThroughPreservedSide) {
  ASSERT_TRUE(Exec("CREATE TABLE l (a INT, tag STRING)"));
  ASSERT_TRUE(Exec("CREATE TABLE r (a INT, v INT)"));
  ASSERT_TRUE(Exec("INSERT INTO l VALUES (1, 'keep'), (2, 'drop'), (3, 'keep')"));
  ASSERT_TRUE(Exec("INSERT INTO r VALUES (1, 10)"));

  // §5: the outer join "can receive [predicates] if they refer only to
  // columns of the PF setformer, in which case they are pushed through".
  std::vector<Row> rows = MustQuery(
      "SELECT l.a, r.v FROM l LEFT OUTER JOIN r ON l.a = r.a "
      "WHERE l.tag = 'keep' ORDER BY a");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Value::Int(10));
  EXPECT_TRUE(rows[1][1].is_null());  // 3 preserved with NULL v
}

TEST_F(ExtensionTest, PointPayloadRoundTrip) {
  std::string payload = ext::EncodePoint(1.25, -3.5);
  Result<std::pair<double, double>> decoded = ext::DecodePoint(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->first, 1.25);
  EXPECT_EQ(decoded->second, -3.5);
  EXPECT_FALSE(ext::DecodePoint("short").ok());

  // Total order through the registered comparator: x-major, then y.
  Value a = ext::MakePointValue(1, 5);
  Value b = ext::MakePointValue(2, 0);
  Value c = ext::MakePointValue(1, 7);
  EXPECT_LT(a.CompareTotal(b), 0);
  EXPECT_LT(a.CompareTotal(c), 0);
  EXPECT_EQ(a.CompareTotal(ext::MakePointValue(1, 5)), 0);
}

TEST_F(ExtensionTest, SpatialNullPropagation) {
  std::vector<Row> rows = MustQuery("SELECT DISTANCE(NULL, POINT(1, 1)), "
                                    "PX(NULL), CONTAINS(NULL, 0, 0, 1, 1)");
  EXPECT_TRUE(rows[0][0].is_null());
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_TRUE(rows[0][2].is_null());
}

TEST_F(ExtensionTest, DroppingRTreeIndexFallsBackToScan) {
  ASSERT_TRUE(Exec("CREATE TABLE pts (id INT, loc POINT)"));
  ASSERT_TRUE(Exec("INSERT INTO pts VALUES (1, POINT(1,1)), (2, POINT(5,5))"));
  ASSERT_TRUE(Exec("CREATE INDEX pts_loc ON pts (loc) USING RTREE"));
  ASSERT_TRUE(Exec("DROP INDEX pts_loc"));
  std::vector<Row> rows =
      MustQuery("SELECT id FROM pts WHERE CONTAINS(loc, 0, 0, 2, 2)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
}

TEST_F(ExtensionTest, SampleZeroAndOversized) {
  ASSERT_TRUE(Exec("CREATE TABLE nums (n INT)"));
  ASSERT_TRUE(Exec("INSERT INTO nums VALUES (1), (2), (3)"));
  EXPECT_EQ(MustQuery("SELECT n FROM SAMPLE(nums, 0) s").size(), 0u);
  EXPECT_EQ(MustQuery("SELECT n FROM SAMPLE(nums, 100) s").size(), 3u);
}

TEST_F(ExtensionTest, RegistrationIsIdempotentish) {
  // Registering the same extensions in a second database must work (the
  // global type registry tolerates the POINT re-registration).
  Database other;
  EXPECT_TRUE(ext::RegisterAllExtensions(&other).ok());
}

}  // namespace
}  // namespace starburst
