file(REMOVE_RECURSE
  "CMakeFiles/example_spatial.dir/spatial.cc.o"
  "CMakeFiles/example_spatial.dir/spatial.cc.o.d"
  "example_spatial"
  "example_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
