#include <algorithm>
#include <set>

#include "rewrite/rule_engine.h"

namespace starburst::rewrite {

using qgm::Box;
using qgm::BoxKind;
using qgm::Expr;
using qgm::Quantifier;
using qgm::QuantifierType;

namespace {

/// Which head columns of `box` are needed by anything in the graph?
/// Returns empty if pruning is not applicable.
std::vector<bool> ComputeUsedColumns(const RuleContext& ctx, Box* box) {
  qgm::Graph* graph = ctx.graph;
  if (box->kind != BoxKind::kSelect) return {};
  if (box == graph->root()) return {};      // final output shape is fixed
  if (box->distinct_enforced) return {};    // pruning changes the dedup key
  std::vector<bool> used(box->head.size(), false);
  for (const auto& owner : graph->boxes()) {
    for (const auto& q : owner->quantifiers) {
      if (q->input != box) continue;
      // Positional consumers need the exact column list.
      if (owner->kind == BoxKind::kSetOp ||
          owner->kind == BoxKind::kRecursiveUnion ||
          owner->kind == BoxKind::kTableFunction ||
          owner->kind == BoxKind::kChoose) {
        return {};
      }
      // Membership tests implicitly read column 0 of the subquery.
      if (q->type == QuantifierType::kExists ||
          q->type == QuantifierType::kAll ||
          q->type == QuantifierType::kAntiExists ||
          q->type == QuantifierType::kSetPredicate) {
        if (!used.empty()) used[0] = true;
      }
    }
    ForEachExprSlot(owner.get(), [&](qgm::ExprPtr* slot) {
      std::vector<std::pair<Quantifier*, size_t>> refs;
      (*slot)->CollectColumnRefs(&refs);
      for (const auto& [q, col] : refs) {
        if (q->input == box && col < used.size()) used[col] = true;
      }
    });
  }
  // A head must keep at least one column (EXISTS over fully-pruned
  // subqueries): keep column 0.
  if (std::none_of(used.begin(), used.end(), [](bool b) { return b; }) &&
      !used.empty()) {
    used[0] = true;
  }
  return used;
}

bool HasPrunableColumns(const RuleContext& ctx) {
  std::vector<bool> used = ComputeUsedColumns(ctx, ctx.box);
  if (used.empty()) return false;
  return std::any_of(used.begin(), used.end(), [](bool b) { return !b; });
}

/// Projection push-down: "avoid the retrieval of unused columns of tables
/// or views". Interacts with predicate migration exactly as §5 describes:
/// once a predicate is pushed below this box, the columns only it
/// referenced stop being used here and get pruned on a later pass.
Status PruneAction(RuleContext& ctx) {
  Box* box = ctx.box;
  std::vector<bool> used = ComputeUsedColumns(ctx, box);
  if (used.empty()) return Status::Internal("prune: candidate vanished");

  std::vector<size_t> remap(box->head.size(), qgm::Box::kNoColumn);
  std::vector<qgm::HeadColumn> kept;
  for (size_t i = 0; i < box->head.size(); ++i) {
    if (used[i]) {
      remap[i] = kept.size();
      kept.push_back(std::move(box->head[i]));
    }
  }
  box->head = std::move(kept);

  // Renumber all references through every quantifier ranging over box.
  for (const auto& owner : ctx.graph->boxes()) {
    for (const auto& q : owner->quantifiers) {
      if (q->input == box) {
        RemapEverywhere(ctx.graph, q.get(), q.get(), remap);
      }
    }
  }
  return Status::OK();
}

}  // namespace

void RegisterProjectionRules(RuleEngine* engine) {
  (void)engine->AddRule(RewriteRule{
      "projection_pruning", "projection", /*priority=*/3, /*weight=*/1.0,
      HasPrunableColumns, PruneAction});
}

}  // namespace starburst::rewrite
