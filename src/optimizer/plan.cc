#include "optimizer/plan.h"

#include <set>
#include <sstream>

namespace starburst::optimizer {

const char* LolepopName(Lolepop op) {
  switch (op) {
    case Lolepop::kScan: return "SCAN";
    case Lolepop::kIndexScan: return "ISCAN";
    case Lolepop::kValues: return "VALUES";
    case Lolepop::kFilter: return "FILTER";
    case Lolepop::kProject: return "PROJECT";
    case Lolepop::kSort: return "SORT";
    case Lolepop::kNlJoin: return "NLJOIN";
    case Lolepop::kMergeJoin: return "MGJOIN";
    case Lolepop::kHashJoin: return "HSJOIN";
    case Lolepop::kTemp: return "TEMP";
    case Lolepop::kShip: return "SHIP";
    case Lolepop::kGroupAgg: return "GROUP";
    case Lolepop::kSetOp: return "SETOP";
    case Lolepop::kDistinct: return "DISTINCT";
    case Lolepop::kTableFunc: return "TABLEFUNC";
    case Lolepop::kRecurse: return "RECURSE";
    case Lolepop::kIterRef: return "ITERREF";
    case Lolepop::kOrRoute: return "OR";
    case Lolepop::kExtension: return "EXT";
  }
  return "?";
}

const char* JoinKindName(JoinKind k) {
  switch (k) {
    case JoinKind::kRegular: return "regular";
    case JoinKind::kLeftOuter: return "left-outer";
    case JoinKind::kExists: return "exists";
    case JoinKind::kAnti: return "anti";
    case JoinKind::kScalar: return "scalar-subquery";
    case JoinKind::kOpAll: return "op-ALL";
    case JoinKind::kSetPred: return "set-predicate";
  }
  return "?";
}

size_t Plan::FindSlot(const qgm::Quantifier* q, size_t column) const {
  for (size_t i = 0; i < output.size(); ++i) {
    if (output[i].quantifier == q && output[i].column == column) return i;
  }
  return kNoSlot;
}

std::string Plan::HeadLine() const {
  std::ostringstream out;
  out << LolepopName(op);
  switch (op) {
    case Lolepop::kScan:
      if (table != nullptr) out << " " << table->name;
      if (!scan_columns.empty()) out << " cols=" << scan_columns.size();
      break;
    case Lolepop::kIndexScan:
      if (index != nullptr) out << " " << index->name;
      if (table != nullptr) out << " on " << table->name;
      break;
    case Lolepop::kNlJoin:
    case Lolepop::kMergeJoin:
    case Lolepop::kHashJoin:
      out << " kind=" << JoinKindName(join_kind);
      if (!join_set_function.empty()) out << "<" << join_set_function << ">";
      break;
    case Lolepop::kShip:
      out << " " << from_site << "->" << to_site;
      break;
    case Lolepop::kExtension:
      out << " " << ext_name;
      if (index != nullptr) out << " " << index->name;
      break;
    case Lolepop::kSort: {
      out << " by(";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out << ",";
        out << sort_keys[i].first << (sort_keys[i].second ? "+" : "-");
      }
      out << ")";
      break;
    }
    case Lolepop::kProject:
    case Lolepop::kGroupAgg:
    case Lolepop::kSetOp:
    case Lolepop::kTableFunc:
    case Lolepop::kRecurse:
    case Lolepop::kIterRef:
      if (box != nullptr) out << " " << box->Label();
      break;
    default:
      break;
  }
  for (const qgm::Expr* p : predicates) {
    out << " [" << p->ToString() << "]";
  }
  return out.str();
}

std::string Plan::ToString(int indent) const {
  std::ostringstream out;
  out << std::string(indent * 2, ' ') << HeadLine();
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  {card=%.6g cost=%.6g}",
                props.cardinality, props.cost);
  out << buf << "\n";
  for (const PlanPtr& input : inputs) {
    out << input->ToString(indent + 1);
  }
  return out.str();
}

std::shared_ptr<Plan> NewPlan(Lolepop op) {
  auto p = std::make_shared<Plan>();
  p->op = op;
  return p;
}

namespace {

void CollectScanQuantifiers(const Plan& plan,
                            std::set<const qgm::Quantifier*>* out) {
  if (plan.op == Lolepop::kScan && plan.quantifier != nullptr) {
    out->insert(plan.quantifier);
  }
  for (const PlanPtr& input : plan.inputs) {
    CollectScanQuantifiers(*input, out);
  }
}

bool ExprSafe(const qgm::Expr& e,
              const std::set<const qgm::Quantifier*>& allowed) {
  switch (e.kind) {
    case qgm::Expr::Kind::kExistsTest:
    case qgm::Expr::Kind::kQuantCompare:
      return false;  // subquery runtimes are stateful and correlated
    case qgm::Expr::Kind::kColumnRef:
      return allowed.count(e.quantifier) > 0;
    default:
      break;
  }
  for (const qgm::ExprPtr& child : e.children) {
    if (child != nullptr && !ExprSafe(*child, allowed)) return false;
  }
  return true;
}

bool NodeSafe(const Plan& plan,
              const std::set<const qgm::Quantifier*>& allowed) {
  for (const qgm::Expr* p : plan.predicates) {
    if (p != nullptr && !ExprSafe(*p, allowed)) return false;
  }
  switch (plan.op) {
    case Lolepop::kScan:
      return plan.table != nullptr && plan.quantifier != nullptr;
    case Lolepop::kFilter:
      break;
    case Lolepop::kProject:
      // A computing projection evaluates the box head; relabel nodes
      // (quantifier set / positional aliases) touch nothing.
      if (plan.quantifier == nullptr && plan.box != nullptr) {
        for (const qgm::HeadColumn& h : plan.box->head) {
          if (h.expr != nullptr && !ExprSafe(*h.expr, allowed)) return false;
        }
      }
      break;
    case Lolepop::kHashJoin:
      if (plan.quant_compare != nullptr) return false;
      switch (plan.join_kind) {
        case JoinKind::kRegular:
        case JoinKind::kLeftOuter:
        case JoinKind::kExists:
        case JoinKind::kAnti:
          break;
        default:
          return false;
      }
      break;
    default:
      return false;
  }
  for (const PlanPtr& input : plan.inputs) {
    if (!NodeSafe(*input, allowed)) return false;
  }
  return true;
}

}  // namespace

bool IsParallelSafe(const Plan& plan) {
  std::set<const qgm::Quantifier*> scans;
  CollectScanQuantifiers(plan, &scans);
  if (scans.empty()) return false;  // nothing to morselize
  return NodeSafe(plan, scans);
}

bool ExprIsParallelSafeOver(const qgm::Expr& expr, const Plan& input) {
  std::set<const qgm::Quantifier*> scans;
  CollectScanQuantifiers(input, &scans);
  return ExprSafe(expr, scans);
}

double ParallelScanRows(const Plan& plan) {
  double rows = 0;
  if (plan.op == Lolepop::kScan && plan.table != nullptr) {
    rows += plan.table->stats.row_count;
  }
  for (const PlanPtr& input : plan.inputs) {
    rows += ParallelScanRows(*input);
  }
  return rows;
}

}  // namespace starburst::optimizer
