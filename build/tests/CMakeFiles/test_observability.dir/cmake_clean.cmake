file(REMOVE_RECURSE
  "CMakeFiles/test_observability.dir/test_observability.cc.o"
  "CMakeFiles/test_observability.dir/test_observability.cc.o.d"
  "test_observability"
  "test_observability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
